//! Campaign-throughput benchmark: the same fixed-seed fleet campaign run
//! through two paired comparisons, each isolating one variable —
//!
//! * **dispatch** (tiny 1-row tables, so per-statement cost dominates):
//!   the legacy `text` path (render → lex → parse per statement) vs the
//!   `ast` fast path — the PR 1 measurement, unchanged;
//! * **eval** (row-heavy tables, so per-row cost dominates): the AST path
//!   with the tree-walking expression evaluator (`ast_tree`, the PR 1
//!   configuration) vs the closure-compiled evaluator (`ast`, the
//!   default);
//! * **txn** (the eval workload with the rollback oracle in the schedule):
//!   measures the cost of the transactional tier — every third test case is
//!   a multi-statement `BEGIN…ROLLBACK`/`BEGIN…COMMIT` session with
//!   setup-replay rebuilds — reported as a `txn_overhead` ratio against the
//!   eval workload's compiled arm;
//! * **concurrency** (the eval workload with the isolation oracle in the
//!   schedule): every third test case is a two-session concurrent schedule
//!   replayed serially in both commit orders — reported as sessions/sec
//!   (two concurrent sessions per schedule) and the fleet-wide
//!   conflict-abort rate, with an `isolation_throughput_ratio` against the
//!   eval workload's compiled arm;
//!
//! * **snapshot** (micro): `BEGIN`/`ROLLBACK` churn over a row-heavy
//!   engine database, reporting `begin_ns_per_table` — the direct cost the
//!   copy-on-write storage drove from O(rows) to O(1) per table (the run
//!   also asserts that pure churn performs **zero** CoW row clones);
//!
//! * **robustness** (fault storm): a supervised campaign over a backend
//!   injecting every infrastructure fault kind — crash, hang, drop,
//!   garbled result — reporting incident/retry/watchdog counters and
//!   asserting that the storm never surfaces as false-positive logic bugs;
//!
//! * **observability** (tracing overhead): the txn workload on one dialect
//!   run untraced vs traced (summary, flight recorder, JSONL), interleaved
//!   min-of-3 — the traced campaign must keep at least
//!   `min_traced_throughput_ratio` of the untraced throughput and produce
//!   a byte-identical report (tracing observes, never perturbs);
//!
//! * **coverage** (atlas + directed scheduling): the txn workload run with
//!   atlas accounting off vs on, nine interleaved repetitions gated on the
//!   median pair ratio — the atlas-enabled campaign must keep at least
//!   `min_coverage_throughput_ratio` of the accounting-free baseline's
//!   throughput and produce a byte-identical report (coverage observes,
//!   never perturbs) — plus one coverage-directed run, which must reach at
//!   least the uniform run's distinct-feature coverage at the same case
//!   budget;
//!
//! * **resilience** (self-healing connection layer): the same campaign run
//!   through a probing pool against a healthy backend and against a flaky
//!   one (capability lie + probe-time crash + post-respawn flapping) —
//!   the flaky campaign must be probed, downgraded and fuzzed to
//!   completion with zero false-positive logic bugs, keeping at least
//!   `min_probed_throughput_ratio` of the healthy run's throughput;
//!
//! plus serial vs parallel fleet sharding on the eval workload.
//!
//! Writes `BENCH_campaign.json` (`schema_version` 9) with queries/sec per
//! arm, the AST/text, compiled/tree, txn-overhead, isolation, tracing and
//! coverage ratios, CoW effectiveness counters (tables snapshotted vs.
//! actually cloned, conflicts avoided by row-range intent), the fault-storm
//! `robustness` block, the `observability` block, the `coverage` block, the
//! parallel/serial speedup, and the committed `ci_floors` that `ci.sh`
//! gates regressions against. The written file is validated before the
//! process exits: malformed or partial output is a non-zero exit, which CI
//! checks.
//!
//! Usage:
//!   `campaign_throughput [queries_per_database] [output_path]`
//!   `campaign_throughput --validate <path>`
//!   `campaign_throughput --partitioned-check [dialect]`
//!   `campaign_throughput --fault-storm-check [dialect]`
//!   `campaign_throughput --trace-check [dialect]`
//!   `campaign_throughput --coverage-check [dialect]`
//!   `campaign_throughput --flaky-check [dialect]`
//!   `campaign_throughput --sqlite-check`

use dbms_sim::{
    available_threads, fleet, observed_infra_kinds, preset_by_name, run_campaign_partitioned,
    run_campaign_partitioned_pooled, run_campaign_partitioned_supervised,
    run_campaign_partitioned_traced, run_fleet_parallel, run_fleet_serial, DialectPreset,
    ExecutionPath, FaultyConfig, FleetReport, InfraFaultKind,
};
use dbms_sqlite::SqliteProcDriver;
use sqlancer_core::driver::{Driver, Pool};
use sqlancer_core::{
    load_checkpoint, render_atlas_report, render_report, render_trace_summary,
    silence_infra_panics, validate_jsonl, Campaign, CampaignConfig, CampaignReport, OracleKind,
    SupervisorConfig, TraceHandle, Tracer, INFRA_MARKER,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// The version of the JSON layout this binary writes. Bump when keys are
/// added or renamed so the CI gate can evolve without breaking old files.
const SCHEMA_VERSION: u32 = 9;

/// Committed regression floors, written into the benchmark artifact and
/// enforced by `ci.sh` against the smoke run. Deliberately conservative:
/// the smoke run is short and the CI machine is shared, so the floors sit
/// well below the steady-state ratios recorded in `BENCH_campaign.json`.
const FLOOR_AST_OVER_TEXT: f64 = 1.4;
const FLOOR_COMPILED_OVER_TREE: f64 = 1.02;
/// The txn workload (rollback oracle every third case, with its
/// reset-and-replay arms) must keep at least this fraction of the eval
/// workload's test-case throughput. Raised from the pre-CoW 0.05 now that
/// `BEGIN` snapshots are O(tables): the steady-state ratio sits near 1.0,
/// and this floor still leaves generous CI-variance headroom while
/// catching any return of the per-BEGIN deep clone.
const FLOOR_TXN_THROUGHPUT_RATIO: f64 = 0.45;
/// The concurrency workload (isolation oracle every third case: two
/// concurrent sessions plus up to two serial replays, each with a
/// setup-replay rebuild) must keep at least this fraction of the eval
/// workload's test-case throughput. Raised from the pre-CoW 0.02 for the
/// same reason as the txn floor — snapshot workspaces no longer clone row
/// data at `BEGIN`.
const FLOOR_ISOLATION_THROUGHPUT_RATIO: f64 = 0.45;
/// A campaign run with the full tracing stack attached (deterministic
/// summary, flight recorder, JSONL dump) must keep at least this fraction
/// of the untraced campaign's throughput — the observability budget is
/// ≤5% overhead. The deterministic plane is counter bumps and bounded
/// event pushes, so the steady-state ratio sits at ~1.0; the floor is the
/// budget itself because min-of-3 interleaved filters scheduler noise.
const FLOOR_TRACED_THROUGHPUT_RATIO: f64 = 0.95;
/// A campaign run with atlas accounting enabled (per-case feature
/// observation, engine-plane polls, saturation windows) must keep at
/// least this fraction of the accounting-free baseline's throughput. The
/// accounting is set unions and counter bumps charged once per case —
/// never per statement, never per row — so the steady-state ratio sits at
/// ~1.0 and the floor is the observability budget itself (the same ≤5%
/// deal the tracer gets). The coverage-*directed* scheduler is priced
/// separately and not gated: steering changes which SQL is generated, so
/// its elapsed ratio measures workload content, not instrumentation.
/// Enforced at full strength by `--coverage-check`; the smoke artifact's
/// regression floor is [`SMOKE_FLOOR_COVERAGE_THROUGHPUT_RATIO`].
const FLOOR_COVERAGE_THROUGHPUT_RATIO: f64 = 0.95;
/// The committed `ci_floors` value the smoke perf gate compares against.
/// The smoke measurement runs immediately after four heavier workloads
/// in the same process, where cgroup-quota throttling adds a few percent
/// of one-sided noise even to the median-of-pairs estimator, so its
/// floor only arms against gross regressions — the strict
/// [`FLOOR_COVERAGE_THROUGHPUT_RATIO`] budget is held by the dedicated
/// `--coverage-check` gate, which runs the same instrument cold.
const SMOKE_FLOOR_COVERAGE_THROUGHPUT_RATIO: f64 = 0.90;
/// A campaign run through the probing pool against the flaky backend
/// (capability lie, probe-time crash, post-respawn flapping — see
/// `FaultyConfig::flaky`) must keep at least this fraction of the same
/// campaign's throughput against the healthy backend. The flaky run pays
/// for real recovery work — whole-case retries with setup replay after
/// probe-time crashes, double retries while the backend flaps, and the
/// capability downgrade reshaping the workload — so the floor only arms
/// against the self-healing layer becoming pathologically expensive
/// (e.g. re-probing per case instead of per connect/re-sync).
const FLOOR_PROBED_THROUGHPUT_RATIO: f64 = 0.25;
/// Case budget of the coverage instrument (the atlas-off-vs-on timing
/// pair runs 10x this; the uniform and directed feature-coverage arms run
/// exactly this). Pinned — like the instrument's seed — rather than
/// scaled with the artifact budget: the directed-vs-uniform comparison is
/// seed-and-budget-specific, and the accounting ratio should price the
/// same workload in the smoke gate, the CI gate and the committed
/// artifact.
const COVERAGE_CASE_BUDGET: usize = 120;

fn base_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(0xBE)
        .databases(2)
        .ddl_per_database(12)
        .queries_per_database(queries_per_database)
        .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
        .reduce_bugs(false)
        .max_reduction_checks(24)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

/// The dispatch workload: 1-row tables, so each statement's cost is
/// dominated by how it reaches the engine (render/lex/parse vs direct
/// AST). Identical to the PR 1 benchmark configuration.
fn dispatch_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = base_config(queries_per_database);
    config.generator.max_insert_rows = 1;
    config
}

/// The eval workload: row-heavy tables, so each statement's cost is
/// dominated by per-row expression evaluation — the regime the compiled
/// evaluator targets (and the realistic one: real tables have rows).
fn eval_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = base_config(queries_per_database);
    config.generator.max_insert_rows = 24;
    config
}

/// The txn workload: the eval workload with the rollback oracle added to
/// the schedule, so every third test case is a transactional session (the
/// first genuinely stateful workload the campaign loop drives).
fn txn_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = eval_config(queries_per_database);
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Rollback];
    config
}

/// The concurrency workload: the eval workload with the isolation oracle
/// added, so every third test case is a two-session concurrent schedule
/// (snapshot workspaces, first-committer-wins validation, serial replays).
fn concurrency_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = eval_config(queries_per_database);
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Isolation];
    config
}

/// Estimated DBMS-visible statements per oracle test case, per workload.
///
/// TLP issues 4 derived queries per case and NoREC 2, so the alternating
/// dispatch/eval schedule averages 3. A rollback-oracle case is far
/// heavier: three setup-replay rebuilds (12 statements each with this
/// configuration), four fingerprint probes, the session body executed
/// three times (~2.5 statements per execution) and six transaction-control
/// statements — roughly 54 — so the three-oracle txn schedule averages
/// about (4 + 2 + 54) / 3 = 20. An isolation-oracle schedule is of the
/// same order (three rebuilds, two concurrent sessions' scripts, up to two
/// serial replays, per-table probes), so the concurrency mix reuses the
/// estimate. These are estimates for the reported throughput numbers, not
/// measured counts.
const STMTS_PER_CASE_TLP_NOREC: f64 = 3.0;
const STMTS_PER_CASE_TXN_MIX: f64 = 20.0;
const STMTS_PER_CASE_ISOLATION_MIX: f64 = 20.0;

struct Arm {
    label: &'static str,
    elapsed_s: f64,
    /// Estimated statements per test case for this arm's oracle schedule.
    stmts_per_case: f64,
    report: FleetReport,
}

impl Arm {
    /// Estimated DBMS-visible statements issued: DDL/DML plus the derived
    /// oracle statements (see the `STMTS_PER_CASE_*` constants).
    fn statements(&self) -> u64 {
        self.report.totals.ddl_statements
            + (self.stmts_per_case * self.report.totals.test_cases as f64) as u64
    }

    fn test_cases_per_sec(&self) -> f64 {
        self.report.totals.test_cases as f64 / self.elapsed_s
    }

    /// Concurrent sessions opened per second: every isolation schedule
    /// drives two live sessions over one engine (the serial-replay sessions
    /// are the oracle's bookkeeping, not the workload).
    fn sessions_per_sec(&self) -> f64 {
        2.0 * self.report.totals.isolation_schedules as f64 / self.elapsed_s
    }

    fn queries_per_sec(&self) -> f64 {
        self.stmts_per_case * self.report.totals.test_cases as f64 / self.elapsed_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"elapsed_s\": {:.4}, \"test_cases\": {}, \"ddl_statements\": {}, \
             \"statements\": {}, \"test_cases_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \
             \"detected_bug_cases\": {}}}",
            self.elapsed_s,
            self.report.totals.test_cases,
            self.report.totals.ddl_statements,
            self.statements(),
            self.test_cases_per_sec(),
            self.queries_per_sec(),
            self.report.totals.detected_bug_cases,
        )
    }
}

/// Runs the given arms several times in alternation over one workload and
/// keeps each arm's fastest run. The minimum is the standard noise filter
/// on a shared machine (scheduler interference only ever adds time, never
/// removes it), and interleaving exposes every arm to the same machine
/// conditions. All repetitions produce identical reports (the campaign is
/// deterministic), so only the timing differs.
fn run_arms(
    config: &CampaignConfig,
    arms: &[(&'static str, ExecutionPath)],
    stmts_per_case: f64,
) -> Vec<Arm> {
    let presets = fleet();
    let mut best: Vec<Option<Arm>> = arms.iter().map(|_| None).collect();
    for _ in 0..3 {
        for (slot, (label, path)) in arms.iter().enumerate() {
            let start = Instant::now();
            let report = run_fleet_serial(&presets, config, *path);
            let elapsed_s = start.elapsed().as_secs_f64();
            if best[slot].as_ref().is_none_or(|b| elapsed_s < b.elapsed_s) {
                best[slot] = Some(Arm {
                    label,
                    elapsed_s,
                    stmts_per_case,
                    report,
                });
            }
        }
    }
    best.into_iter()
        .map(|arm| arm.expect("three repetitions produce a best"))
        .collect()
}

// ------------------------------------------------------- snapshot micro ----

/// Result of the `BEGIN`/`ROLLBACK` churn micro-workload.
struct SnapshotMicro {
    tables: usize,
    rows_per_table: usize,
    iterations: usize,
    begin_ns_per_table: f64,
    tables_snapshotted: u64,
    tables_cow_cloned: u64,
}

/// Measures pure snapshot cost: `BEGIN`/`ROLLBACK` churn over a row-heavy
/// database. With copy-on-write storage every `BEGIN` shares table
/// versions by pointer, so the per-table cost is row-count-independent and
/// the churn performs zero CoW row clones — both are asserted, not just
/// reported.
fn snapshot_micro() -> SnapshotMicro {
    use sql_engine::{Engine, EngineConfig};
    use sql_parser::parse_statement;
    const TABLES: usize = 8;
    const ROWS_PER_TABLE: usize = 384;
    const BATCH: usize = 32;
    const ITERATIONS: usize = 4000;
    let engine = Engine::new(EngineConfig::dynamic());
    let mut session = engine.session();
    let mut run = |sql: &str| {
        session
            .execute(&parse_statement(sql).expect("bench SQL parses"))
            .expect("bench SQL executes");
    };
    for t in 0..TABLES {
        run(&format!("CREATE TABLE t{t} (c0 INTEGER, c1 TEXT)"));
        for batch in 0..(ROWS_PER_TABLE / BATCH) {
            let rows: Vec<String> = (0..BATCH)
                .map(|i| format!("({}, 'r{}')", batch * BATCH + i, i))
                .collect();
            run(&format!(
                "INSERT INTO t{t} (c0, c1) VALUES {}",
                rows.join(", ")
            ));
        }
    }
    let before = engine.cow_stats();
    let start = Instant::now();
    for _ in 0..ITERATIONS {
        run("BEGIN");
        run("ROLLBACK");
    }
    let elapsed = start.elapsed();
    let after = engine.cow_stats();
    assert_eq!(
        after.tables_cow_cloned, before.tables_cow_cloned,
        "BEGIN/ROLLBACK churn must not clone row data"
    );
    SnapshotMicro {
        tables: TABLES,
        rows_per_table: ROWS_PER_TABLE,
        iterations: ITERATIONS,
        begin_ns_per_table: elapsed.as_nanos() as f64 / (ITERATIONS * TABLES) as f64,
        tables_snapshotted: after.tables_snapshotted - before.tables_snapshotted,
        tables_cow_cloned: after.tables_cow_cloned - before.tables_cow_cloned,
    }
}

// ------------------------------------------------- partitioned check ----

/// Verifies (and times) within-dialect database sharding: the partitioned
/// campaign must produce byte-identical reports and learned profiles for
/// any worker count. Run by `ci.sh`; the speedup is informational on
/// single-CPU machines and a real scaling check on wider ones.
fn partitioned_check(dialect: &str) -> ! {
    let preset = preset_by_name(dialect).unwrap_or_else(|| {
        eprintln!("unknown dialect {dialect}");
        std::process::exit(1);
    });
    let mut config = base_config(60);
    config.databases = 4;
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Isolation];
    let threads = available_threads();
    let serial_start = Instant::now();
    let serial = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 1);
    let serial_s = serial_start.elapsed().as_secs_f64();
    let parallel_start = Instant::now();
    let parallel = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, threads.max(2));
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    let identical = serial.report.metrics == parallel.report.metrics
        && serial.report.reports == parallel.report.reports
        && serial.report.prioritized_cases == parallel.report.prioritized_cases
        && serial.report.txn_cases == parallel.report.txn_cases
        && serial.report.schedule_cases == parallel.report.schedule_cases
        && serial.report.validity_series == parallel.report.validity_series
        && serial
            .profile
            .iter_query()
            .eq(parallel.profile.iter_query())
        && serial.profile.iter_ddl().eq(parallel.profile.iter_ddl());
    if !identical {
        eprintln!("FAIL: partitioned campaign diverged between 1 and {threads} workers");
        std::process::exit(1);
    }
    println!(
        "partitioned({dialect}): serial {serial_s:.3}s, {} workers {parallel_s:.3}s \
         (x{:.2}), reports byte-identical",
        threads.max(2),
        serial_s / parallel_s
    );
    // The speedup assertion arms only on machines with real parallelism
    // (this development container reports 1 CPU); the identity check
    // above always runs. The bound is deliberately loose — sharding must
    // not make the campaign slower, demonstrating scaling is the wider
    // machine's job.
    if threads > 1 && parallel_s > serial_s * 1.10 {
        eprintln!(
            "FAIL: partitioned campaign slower with {threads} workers \
             ({parallel_s:.3}s vs {serial_s:.3}s serial)"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

// ------------------------------------------------- fault-storm gate ----

/// The supervised fault-storm campaign configuration: every infrastructure
/// fault armed on the backend, the full oracle schedule on the platform.
fn storm_campaign_config() -> CampaignConfig {
    let mut config = base_config(120);
    config.seed = 0x57042;
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Rollback];
    config
}

fn storm_preset(dialect: &str, faults: FaultyConfig) -> DialectPreset {
    preset_by_name(dialect)
        .unwrap_or_else(|| {
            eprintln!("unknown dialect {dialect}");
            std::process::exit(1);
        })
        .with_infra_faults(faults)
}

fn run_storm(dialect: &str, faults: FaultyConfig) -> CampaignReport {
    let mut conn = storm_preset(dialect, faults).instantiate_for_path(ExecutionPath::Ast);
    Campaign::new(storm_campaign_config()).run_supervised(&mut conn, &SupervisorConfig::default())
}

/// Counts bug reports whose description carries the infrastructure marker —
/// the false positives the supervisor must prevent. Always 0 on a healthy
/// platform; reported (and gated on) rather than assumed.
fn false_positive_logic_bugs(report: &CampaignReport) -> usize {
    report
        .reports
        .iter()
        .filter(|bug| bug.description.contains(INFRA_MARKER))
        .count()
}

/// The CI fault-storm gate. A campaign with **all** infrastructure faults
/// armed must:
///
/// 1. complete without aborting or quarantining (every planned fault clears
///    within the default retry budget);
/// 2. observe **every** injected `infra_*` fault kind, with ground-truth
///    bisection — disarming a kind removes exactly that kind's incidents;
/// 3. report **zero** false-positive logic bugs (no bug report carries the
///    infrastructure marker);
/// 4. pass the resume-identity check: the storm campaign killed at a case
///    index and resumed from its checkpoint file produces a byte-identical
///    final report, serially and for every partitioned worker count.
fn fault_storm_check(dialect: &str) -> ! {
    silence_infra_panics();
    let all_kinds: Vec<&str> = InfraFaultKind::all().iter().map(|k| k.id()).collect();

    // 1+2+3: the storm completes, observes everything, reports no
    // false positives.
    let storm = run_storm(dialect, FaultyConfig::storm());
    let observed = observed_infra_kinds(&storm);
    if observed != all_kinds {
        eprintln!("FAIL: storm observed {observed:?}, expected {all_kinds:?}");
        std::process::exit(1);
    }
    if storm.degraded || storm.robustness.quarantines > 0 || storm.robustness.infra_failures > 0 {
        eprintln!(
            "FAIL: storm campaign degraded (quarantines {}, infra_failures {})",
            storm.robustness.quarantines, storm.robustness.infra_failures
        );
        std::process::exit(1);
    }
    let false_positives = false_positive_logic_bugs(&storm);
    if false_positives > 0 {
        eprintln!("FAIL: {false_positives} infrastructure faults surfaced as logic bugs");
        std::process::exit(1);
    }
    // 2 (bisection): disarming a kind removes exactly that kind.
    for kind in InfraFaultKind::all() {
        let without =
            observed_infra_kinds(&run_storm(dialect, FaultyConfig::storm().without(kind)));
        if without.contains(&kind.id()) {
            eprintln!("FAIL: disarming {} left its incidents behind", kind.id());
            std::process::exit(1);
        }
    }

    // 4: kill-at-k resume identity, serial and partitioned.
    let reference = render_report(&storm);
    let scratch = std::env::temp_dir().join(format!(
        "sqlancerpp_fault_storm_{}_{dialect}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&scratch);
    let checkpointing = SupervisorConfig {
        checkpoint_every: 10,
        checkpoint_path: Some(scratch.clone()),
        ..SupervisorConfig::default()
    };
    let killed = SupervisorConfig {
        stop_after_cases: Some(37),
        ..checkpointing.clone()
    };
    let mut conn =
        storm_preset(dialect, FaultyConfig::storm()).instantiate_for_path(ExecutionPath::Ast);
    let _ = Campaign::new(storm_campaign_config()).run_supervised(&mut conn, &killed);
    let checkpoint = match load_checkpoint(&scratch) {
        Ok(checkpoint) => checkpoint,
        Err(why) => {
            eprintln!("FAIL: no checkpoint after the simulated kill: {why}");
            std::process::exit(1);
        }
    };
    let mut conn =
        storm_preset(dialect, FaultyConfig::storm()).instantiate_for_path(ExecutionPath::Ast);
    let resumed =
        Campaign::new(storm_campaign_config()).resume(&mut conn, &checkpointing, checkpoint);
    let _ = std::fs::remove_file(&scratch);
    if render_report(&resumed) != reference {
        eprintln!("FAIL: serial kill-at-37 resume diverged from the uninterrupted storm run");
        std::process::exit(1);
    }
    for threads in [1usize, available_threads().max(2)] {
        let preset = storm_preset(dialect, FaultyConfig::storm());
        let mut config = storm_campaign_config();
        config.databases = 3;
        let uninterrupted = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, threads);
        let base = std::env::temp_dir().join(format!(
            "sqlancerpp_fault_storm_part_{}_{dialect}_{threads}",
            std::process::id()
        ));
        let cleanup = |base: &std::path::Path| {
            for index in 0..config.databases {
                let _ = std::fs::remove_file(dbms_sim::shard_checkpoint_path(base, index));
            }
        };
        cleanup(&base);
        let part_checkpointing = SupervisorConfig {
            checkpoint_every: 8,
            checkpoint_path: Some(base.clone()),
            ..SupervisorConfig::default()
        };
        let part_killed = SupervisorConfig {
            stop_after_cases: Some(21),
            ..part_checkpointing.clone()
        };
        let _ = run_campaign_partitioned_supervised(
            &preset,
            &config,
            ExecutionPath::Ast,
            threads,
            &part_killed,
        );
        let resumed = run_campaign_partitioned_supervised(
            &preset,
            &config,
            ExecutionPath::Ast,
            threads,
            &part_checkpointing,
        );
        cleanup(&base);
        if render_report(&resumed.report) != render_report(&uninterrupted.report) {
            eprintln!(
                "FAIL: {threads}-worker partitioned kill-at-21 resume diverged from the \
                 uninterrupted storm run"
            );
            std::process::exit(1);
        }
    }
    println!(
        "fault-storm({dialect}): {} cases, {} incidents ({} retries, {} watchdog trips), \
         all {} fault kinds observed with clean bisection, 0 false-positive logic bugs, \
         kill/resume byte-identical (serial + partitioned)",
        storm.metrics.test_cases,
        storm.robustness.incidents,
        storm.robustness.retries,
        storm.robustness.watchdog_trips,
        all_kinds.len(),
    );
    std::process::exit(0);
}

// ---------------------------------------------------------- trace gate ----

/// The observability workload: the txn schedule (the heaviest per-case
/// event stream — statements, rebuilds, retries) on one dialect.
fn trace_campaign_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = txn_config(queries_per_database);
    config.seed = 0x7247CE;
    config
}

/// One untraced supervised campaign, timed.
fn untraced_run(preset: &DialectPreset, config: &CampaignConfig) -> (f64, CampaignReport) {
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let mut campaign = Campaign::new(config.clone());
    let start = Instant::now();
    let report = campaign.run_supervised(&mut conn, &SupervisorConfig::default());
    (start.elapsed().as_secs_f64(), report)
}

/// One supervised campaign with the full tracing stack attached
/// (deterministic summary, 32-slot flight recorder, JSONL dump), timed.
/// Returns the sealed tracer alongside the report.
fn traced_run(
    preset: &DialectPreset,
    config: &CampaignConfig,
    jsonl_path: &std::path::Path,
) -> (f64, CampaignReport, Tracer) {
    let tracer = Rc::new(RefCell::new(
        Tracer::new()
            .with_flight_recorder(32)
            .with_jsonl_path(jsonl_path.to_path_buf()),
    ));
    let handle: TraceHandle = tracer.clone();
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let mut campaign = Campaign::new(config.clone());
    campaign.set_trace(Some(handle));
    let start = Instant::now();
    let report = campaign.run_supervised(&mut conn, &SupervisorConfig::default());
    let elapsed = start.elapsed().as_secs_f64();
    drop(campaign);
    let tracer = Rc::try_unwrap(tracer)
        .expect("campaign released its trace handle")
        .into_inner();
    (elapsed, report, tracer)
}

/// The untraced-vs-traced pair, interleaved min-of-3 (the same noise
/// filter as [`run_arms`]). Tracing must not perturb the campaign, so the
/// reports are asserted identical before the timings are compared.
struct TraceOverhead {
    untraced_s: f64,
    traced_s: f64,
    report: CampaignReport,
    tracer: Tracer,
}

impl TraceOverhead {
    /// Traced throughput as a fraction of untraced (same work, so the
    /// ratio is the inverse elapsed ratio).
    fn ratio(&self) -> f64 {
        self.untraced_s / self.traced_s
    }
}

fn measure_trace_overhead(dialect: &str, queries_per_database: usize) -> TraceOverhead {
    let preset = preset_by_name(dialect).unwrap_or_else(|| {
        eprintln!("unknown dialect {dialect}");
        std::process::exit(1);
    });
    let config = trace_campaign_config(queries_per_database);
    let jsonl_path = std::env::temp_dir().join(format!(
        "sqlancerpp_trace_overhead_{}_{dialect}.jsonl",
        std::process::id()
    ));
    let mut untraced_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut untraced_report = None;
    let mut traced_result = None;
    for _ in 0..3 {
        let (elapsed, report) = untraced_run(&preset, &config);
        untraced_s = untraced_s.min(elapsed);
        untraced_report = Some(report);
        let (elapsed, report, tracer) = traced_run(&preset, &config, &jsonl_path);
        if elapsed < traced_s {
            traced_s = elapsed;
            traced_result = Some((report, tracer));
        }
    }
    let _ = std::fs::remove_file(&jsonl_path);
    let untraced_report = untraced_report.expect("three repetitions ran");
    let (report, tracer) = traced_result.expect("three repetitions ran");
    assert_eq!(
        render_report(&untraced_report),
        render_report(&report),
        "attaching a tracer changed the campaign — tracing must observe, never perturb"
    );
    TraceOverhead {
        untraced_s,
        traced_s,
        report,
        tracer,
    }
}

/// The CI observability gate. Asserts:
///
/// 1. **overhead** — the fully-traced campaign keeps at least
///    [`FLOOR_TRACED_THROUGHPUT_RATIO`] of the untraced throughput, and
///    the traced report is byte-identical to the untraced one;
/// 2. **merge identity** — under a full fault storm, the partitioned
///    runner's merged trace summary (and report) is byte-identical between
///    one worker with a size-1 pool and multiple workers with a size-2
///    pool;
/// 3. **forensic completeness** — in the storm run, every detected bug
///    case has a pinned flight-recorder history, and the JSONL dump
///    flushed at campaign end is well-formed and matches the in-memory
///    document.
fn trace_check(dialect: &str) -> ! {
    silence_infra_panics();

    // 1: overhead + observe-don't-perturb, on the healthy backend.
    let overhead = measure_trace_overhead(dialect, 120);
    let ratio = overhead.ratio();
    if !ratio.is_finite() || ratio < FLOOR_TRACED_THROUGHPUT_RATIO {
        eprintln!(
            "FAIL: tracing overhead too high: traced/untraced throughput ratio {ratio:.3} \
             < floor {FLOOR_TRACED_THROUGHPUT_RATIO}"
        );
        std::process::exit(1);
    }

    // 2: merged trace summaries are pool- and worker-count-invariant,
    // under the fault storm (the adversarial regime for the invariant:
    // retries, recoveries and slot re-syncs all in play).
    let mut config = trace_campaign_config(120);
    config.databases = 3;
    let storm = storm_preset(dialect, FaultyConfig::storm());
    let driver = storm.driver(ExecutionPath::Ast);
    let supervision = SupervisorConfig::default();
    let (serial, serial_summary) =
        run_campaign_partitioned_traced(&driver, &config, 1, 1, &supervision);
    let workers = available_threads().max(2);
    let (sharded, sharded_summary) =
        run_campaign_partitioned_traced(&driver, &config, workers, 2, &supervision);
    if render_report(&serial.report) != render_report(&sharded.report) {
        eprintln!("FAIL: storm campaign report diverged between (1 worker, pool 1) and ({workers} workers, pool 2)");
        std::process::exit(1);
    }
    if render_trace_summary(&serial_summary) != render_trace_summary(&sharded_summary) {
        eprintln!("FAIL: merged trace summary diverged between (1 worker, pool 1) and ({workers} workers, pool 2)");
        std::process::exit(1);
    }

    // 3: every detected bug in the storm run keeps a complete pinned
    // history, and the JSONL flight-recorder dump self-validates.
    let jsonl_path = std::env::temp_dir().join(format!(
        "sqlancerpp_trace_check_{}_{dialect}.jsonl",
        std::process::id()
    ));
    let (_, storm_report, storm_tracer) =
        traced_run(&storm, &trace_campaign_config(120), &jsonl_path);
    if storm_report.metrics.detected_bug_cases == 0 {
        eprintln!("FAIL: the storm workload detected no bugs — the pinning check needs bug cases");
        std::process::exit(1);
    }
    let recorder = storm_tracer.recorder().expect("recorder configured");
    let pinned_bugs = recorder
        .pinned()
        .iter()
        .filter(|record| record.outcome() == "bug")
        .count() as u64;
    if pinned_bugs != storm_report.metrics.detected_bug_cases {
        eprintln!(
            "FAIL: {} detected bug cases but {pinned_bugs} pinned flight-recorder histories",
            storm_report.metrics.detected_bug_cases
        );
        std::process::exit(1);
    }
    let text = match std::fs::read_to_string(&jsonl_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("FAIL: flight-recorder JSONL was not flushed: {err}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_file(&jsonl_path);
    let jsonl_lines = match validate_jsonl(&text) {
        Ok(lines) => lines,
        Err(why) => {
            eprintln!("FAIL: flight-recorder JSONL malformed: {why}");
            std::process::exit(1);
        }
    };
    if Some(text) != storm_tracer.jsonl() {
        eprintln!("FAIL: flushed JSONL differs from the in-memory document");
        std::process::exit(1);
    }

    println!(
        "trace-check({dialect}): traced/untraced throughput ratio {ratio:.3} \
         (floor {FLOOR_TRACED_THROUGHPUT_RATIO}), merged summaries byte-identical \
         (1 worker/pool 1 == {workers} workers/pool 2), {pinned_bugs} bug case(s) pinned \
         with complete histories, JSONL valid ({jsonl_lines} lines)"
    );
    std::process::exit(0);
}

// ------------------------------------------------- coverage-atlas gate ----

/// The coverage workload: the txn schedule (the richest feature mix —
/// query features plus transactional statements) with the atlas
/// accounting and the coverage-directed scheduler toggled per arm.
fn coverage_campaign_config(
    queries_per_database: usize,
    atlas: bool,
    directed: bool,
) -> CampaignConfig {
    let mut config = txn_config(queries_per_database);
    config.seed = 0x5EED1;
    config.coverage_atlas = atlas;
    config.coverage_directed = directed;
    config
}

/// The atlas-off-vs-on pair, nine interleaved repetitions at a 10x case
/// budget, gated on the median per-repetition ratio (stronger noise
/// filtering than [`run_arms`]'s min-of-3 because this ratio holds a
/// 0.95 floor on a shared machine where the arms run in ~200ms), plus
/// untimed uniform and coverage-directed runs at the caller's budget.
/// The timed arms execute the same workload byte for byte — the atlas
/// touches no RNG — so their throughput ratio prices the accounting
/// alone; the directed run steers generation (a different, usually
/// heavier workload), so it is compared on distinct-feature coverage
/// against the uniform run at the same case budget, never on elapsed.
struct CoverageOverhead {
    baseline_s: f64,
    atlas_s: f64,
    /// Per-repetition baseline/atlas elapsed ratios. The two arms of a
    /// repetition run back to back, so a sustained load spike on a
    /// shared machine slows both about equally and the pair's ratio
    /// stays unbiased — unlike the global min-of-N elapsed pair, which
    /// compares two extreme order statistics drawn seconds apart.
    pair_ratios: Vec<f64>,
    /// Atlas-enabled uniform-scheduling run at the case budget — the
    /// feature-coverage yardstick `directed` is compared against.
    uniform: CampaignReport,
    /// Atlas-enabled coverage-directed run at the same case budget.
    directed: CampaignReport,
}

impl CoverageOverhead {
    /// Atlas-enabled throughput as a fraction of the accounting-free
    /// baseline: the median of the per-repetition pair ratios, which
    /// outlier-trims scheduler noise in either direction while a real
    /// accounting regression (slowing every atlas arm) still moves it.
    fn ratio(&self) -> f64 {
        let mut sorted = self.pair_ratios.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }
}

fn measure_coverage_overhead(dialect: &str, queries_per_database: usize) -> CoverageOverhead {
    let preset = preset_by_name(dialect).unwrap_or_else(|| {
        eprintln!("unknown dialect {dialect}");
        std::process::exit(1);
    });
    // The timed pair runs a 10x case budget: at the gate's budgets one
    // arm finishes in tens of milliseconds, where a single scheduler
    // preemption distorts a rep by ~10% — too coarse to hold a 0.95
    // floor against. Ten times longer arms amortise that noise; the
    // feature-coverage arms below stay at the caller's budget so the
    // directed-vs-uniform comparison is at equal, committed budgets.
    let timing_budget = queries_per_database * 10;
    let baseline_config = coverage_campaign_config(timing_budget, false, false);
    let atlas_config = coverage_campaign_config(timing_budget, true, false);
    let mut baseline_s = f64::INFINITY;
    let mut atlas_s = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    let mut baseline_report = None;
    let mut atlas_report = None;
    // The arm order alternates each repetition: under cgroup CPU-quota
    // throttling the first arm of a pair tends to get the burst and the
    // second the throttle, so a fixed order biases the ratio one way.
    for rep in 0..9 {
        let mut rep_baseline = f64::INFINITY;
        let mut rep_atlas = f64::INFINITY;
        let order = [rep % 2 == 0, rep % 2 != 0];
        for baseline_first in order {
            if baseline_first {
                let (elapsed, report) = untraced_run(&preset, &baseline_config);
                rep_baseline = elapsed;
                baseline_report = Some(report);
            } else {
                let (elapsed, report) = untraced_run(&preset, &atlas_config);
                rep_atlas = elapsed;
                atlas_report = Some(report);
            }
        }
        baseline_s = baseline_s.min(rep_baseline);
        atlas_s = atlas_s.min(rep_atlas);
        pair_ratios.push(rep_baseline / rep_atlas);
    }
    let baseline = baseline_report.expect("repetitions ran");
    let atlas = atlas_report.expect("repetitions ran");
    assert_eq!(
        render_report(&baseline),
        render_report(&atlas),
        "enabling the atlas changed the campaign — coverage must observe, never perturb"
    );
    let (_, uniform) = untraced_run(
        &preset,
        &coverage_campaign_config(queries_per_database, true, false),
    );
    let (_, directed) = untraced_run(
        &preset,
        &coverage_campaign_config(queries_per_database, true, true),
    );
    CoverageOverhead {
        baseline_s,
        atlas_s,
        pair_ratios,
        uniform,
        directed,
    }
}

/// The CI coverage-atlas gate. Asserts:
///
/// 1. **merge identity** — under a full fault storm, the rendered coverage
///    atlas is byte-identical for any worker count (1 and all available),
///    any pool size (1, 2, 4) and both execution paths (coverage is
///    charged at the shared text/AST funnel, so dispatch is not an
///    observable);
/// 2. **directed wins** — coverage-directed scheduling reaches at least
///    the uniform scheduler's distinct-feature coverage at the same case
///    budget;
/// 3. **overhead** — the atlas-enabled campaign keeps at least
///    [`FLOOR_COVERAGE_THROUGHPUT_RATIO`] of the accounting-free
///    baseline's throughput, with a byte-identical report;
/// 4. **self-validating flush** — the atlas line flushed through the
///    flight-recorder JSONL path is well-formed and byte-identical to the
///    final report's atlas.
fn coverage_check(dialect: &str) -> ! {
    silence_infra_panics();

    // 1: atlas byte-identity across workers x pools x paths, under the
    // full fault storm (retries, recoveries and slot re-syncs in play).
    let mut config = coverage_campaign_config(60, true, false);
    config.databases = 3;
    let storm = storm_preset(dialect, FaultyConfig::storm());
    let supervision = SupervisorConfig::default();
    let workers = available_threads().max(2);
    let mut rendered = Vec::new();
    for path in [ExecutionPath::Ast, ExecutionPath::Text] {
        let driver = storm.driver(path);
        let reference = run_campaign_partitioned_pooled(&driver, &config, 1, 1, &supervision);
        let baseline = render_atlas_report(&reference.report);
        for section in ["oracle TLP", "saturation novel", "engine "] {
            if !baseline.contains(section) {
                eprintln!("FAIL: rendered atlas is missing its \"{section}\" section:\n{baseline}");
                std::process::exit(1);
            }
        }
        for (threads, pool_size) in [(1usize, 2usize), (workers, 1), (workers, 2), (workers, 4)] {
            let run =
                run_campaign_partitioned_pooled(&driver, &config, threads, pool_size, &supervision);
            if render_atlas_report(&run.report) != baseline {
                eprintln!(
                    "FAIL: {path:?} atlas diverged at {threads} workers, pool size {pool_size}"
                );
                std::process::exit(1);
            }
        }
        rendered.push(baseline);
    }
    if rendered[0] != rendered[1] {
        eprintln!("FAIL: AST and text execution paths rendered different atlases");
        std::process::exit(1);
    }

    // 2+3: the accounting keeps the committed fraction of the baseline's
    // throughput, and directed mode reaches at least uniform coverage at
    // the same case budget.
    let overhead = measure_coverage_overhead(dialect, COVERAGE_CASE_BUDGET);
    let ratio = overhead.ratio();
    if !ratio.is_finite() || ratio < FLOOR_COVERAGE_THROUGHPUT_RATIO {
        eprintln!(
            "FAIL: atlas accounting too expensive: atlas/baseline throughput ratio \
             {ratio:.3} < floor {FLOOR_COVERAGE_THROUGHPUT_RATIO}"
        );
        std::process::exit(1);
    }
    let uniform_features = overhead.uniform.coverage.distinct_features();
    let directed_features = overhead.directed.coverage.distinct_features();
    if directed_features < uniform_features {
        eprintln!(
            "FAIL: coverage-directed scheduling lost coverage: {directed_features} distinct \
             features vs {uniform_features} uniform at the same case budget"
        );
        std::process::exit(1);
    }

    // 4: the atlas flushed through the flight-recorder JSONL path is
    // well-formed and matches the final in-memory atlas exactly.
    let preset = preset_by_name(dialect).unwrap_or_else(|| {
        eprintln!("unknown dialect {dialect}");
        std::process::exit(1);
    });
    let jsonl_path = std::env::temp_dir().join(format!(
        "sqlancerpp_coverage_check_{}_{dialect}.jsonl",
        std::process::id()
    ));
    let (_, report, _) = traced_run(
        &preset,
        &coverage_campaign_config(120, true, true),
        &jsonl_path,
    );
    let text = match std::fs::read_to_string(&jsonl_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("FAIL: atlas JSONL was not flushed: {err}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_file(&jsonl_path);
    let jsonl_lines = match validate_jsonl(&text) {
        Ok(lines) => lines,
        Err(why) => {
            eprintln!("FAIL: atlas JSONL malformed: {why}");
            std::process::exit(1);
        }
    };
    let atlas_line = report.coverage.to_json_line(&report.dbms_name);
    // `lines()` strips the terminator `to_json_line` appends.
    let atlas_line = atlas_line.trim_end();
    if !text.lines().any(|line| line == atlas_line) {
        eprintln!("FAIL: flushed JSONL is missing the final coverage-atlas line");
        std::process::exit(1);
    }

    println!(
        "coverage-check({dialect}): atlas byte-identical across 1/{workers} workers x \
         1/2/4 pools x both paths, directed {directed_features} >= uniform {uniform_features} \
         distinct features, atlas/baseline throughput ratio {ratio:.3} \
         (floor {FLOOR_COVERAGE_THROUGHPUT_RATIO}), atlas JSONL valid ({jsonl_lines} lines)"
    );
    std::process::exit(0);
}

// ------------------------------------------------- flaky-backend gate ----

/// The resilience workload: the storm schedule (TLP + NoREC + rollback,
/// so transaction control is actually generated — the regime where a
/// capability lie matters) over three databases, so the per-database
/// breaker reset and drift re-announcement are exercised.
fn flaky_campaign_config() -> CampaignConfig {
    let mut config = base_config(120);
    config.seed = 0xF1AC;
    config.databases = 3;
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Rollback];
    config
}

/// The healthy-vs-flaky pooled pair, interleaved min-of-3 (the same noise
/// filter as [`run_arms`]): the same campaign through a probing
/// 2-connection pool against the clean backend and against
/// `FaultyConfig::flaky` (capability lie + probe-time crash +
/// post-respawn flapping). Returns the elapsed pair and the flaky run's
/// report.
struct FlakyOverhead {
    healthy_s: f64,
    flaky_s: f64,
    report: CampaignReport,
}

impl FlakyOverhead {
    /// Probed (flaky) throughput as a fraction of the healthy run's.
    fn ratio(&self) -> f64 {
        self.healthy_s / self.flaky_s
    }
}

fn measure_flaky(dialect: &str) -> FlakyOverhead {
    let config = flaky_campaign_config();
    let supervision = SupervisorConfig::default();
    let healthy_driver = preset_by_name(dialect)
        .unwrap_or_else(|| {
            eprintln!("unknown dialect {dialect}");
            std::process::exit(1);
        })
        .driver(ExecutionPath::Ast);
    let flaky_driver = storm_preset(dialect, FaultyConfig::flaky()).driver(ExecutionPath::Ast);
    let mut healthy_s = f64::INFINITY;
    let mut flaky_s = f64::INFINITY;
    let mut flaky_report = None;
    for _ in 0..3 {
        let start = Instant::now();
        let _ = run_campaign_partitioned_pooled(&healthy_driver, &config, 1, 2, &supervision);
        healthy_s = healthy_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let run = run_campaign_partitioned_pooled(&flaky_driver, &config, 1, 2, &supervision);
        flaky_s = flaky_s.min(start.elapsed().as_secs_f64());
        flaky_report = Some(run.report);
    }
    FlakyOverhead {
        healthy_s,
        flaky_s,
        report: flaky_report.expect("three repetitions ran"),
    }
}

/// The CI self-healing gate. A backend that lies about transaction
/// support, crashes during capability probes and flaps after respawns
/// must be probed, downgraded and fuzzed to completion:
///
/// 1. **clean completion** — the flaky campaign is never degraded, never
///    quarantines, exhausts no retry budget, and reports **zero**
///    false-positive logic bugs;
/// 2. **full attribution** — exactly the armed flaky fault kinds (probe
///    crash, respawn flap, capability lie) appear in the incident ledger,
///    every breaker trip and recovery is ledgered as an incident matching
///    its robustness counter, and both trips and recoveries actually
///    happened;
/// 3. **determinism** — the rendered report is byte-identical across pool
///    sizes 1/2/4, worker counts 1/N and both execution paths while
///    breakers trip and recover;
/// 4. **overhead** — the flaky campaign keeps at least
///    [`FLOOR_PROBED_THROUGHPUT_RATIO`] of the healthy pooled campaign's
///    throughput.
fn flaky_check(dialect: &str) -> ! {
    silence_infra_panics();
    let config = flaky_campaign_config();
    let supervision = SupervisorConfig::default();
    let workers = available_threads().max(2);

    // 1+2: the reference run completes clean with full attribution.
    let driver = storm_preset(dialect, FaultyConfig::flaky()).driver(ExecutionPath::Ast);
    let reference = run_campaign_partitioned_pooled(&driver, &config, 1, 1, &supervision).report;
    if reference.metrics.test_cases == 0 {
        eprintln!("FAIL: flaky campaign ran no test cases");
        std::process::exit(1);
    }
    if reference.degraded
        || reference.robustness.quarantines > 0
        || reference.robustness.infra_failures > 0
    {
        eprintln!(
            "FAIL: flaky campaign degraded (quarantines {}, infra_failures {})",
            reference.robustness.quarantines, reference.robustness.infra_failures
        );
        std::process::exit(1);
    }
    let false_positives = false_positive_logic_bugs(&reference);
    if false_positives > 0 {
        eprintln!("FAIL: {false_positives} flaky-backend faults surfaced as logic bugs");
        std::process::exit(1);
    }
    let observed = observed_infra_kinds(&reference);
    if observed != vec!["infra_probe", "infra_flap", "infra_capability_lie"] {
        eprintln!(
            "FAIL: flaky campaign observed {observed:?}, expected exactly \
             [infra_probe, infra_flap, infra_capability_lie]"
        );
        std::process::exit(1);
    }
    if reference.robustness.capability_drifts == 0 {
        eprintln!("FAIL: the lying driver produced no capability-drift incidents");
        std::process::exit(1);
    }
    use sqlancer_core::supervisor::IncidentKind;
    let ledger_trips = reference
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::BreakerTrip)
        .count() as u64;
    let ledger_recoveries = reference
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::BreakerRecovery)
        .count() as u64;
    if reference.robustness.breaker_trips == 0 || ledger_trips != reference.robustness.breaker_trips
    {
        eprintln!(
            "FAIL: {} breaker trips counted but {ledger_trips} in the incident ledger \
             (every trip must be ledgered, and the flaky backend must trip some)",
            reference.robustness.breaker_trips
        );
        std::process::exit(1);
    }
    if reference.robustness.breaker_recoveries == 0
        || ledger_recoveries != reference.robustness.breaker_recoveries
    {
        eprintln!(
            "FAIL: {} breaker recoveries counted but {ledger_recoveries} in the incident ledger",
            reference.robustness.breaker_recoveries
        );
        std::process::exit(1);
    }

    // 3: report byte-identity across pools x workers x paths.
    let mut rendered = Vec::new();
    for path in [ExecutionPath::Ast, ExecutionPath::Text] {
        let driver = storm_preset(dialect, FaultyConfig::flaky()).driver(path);
        let baseline = render_report(
            &run_campaign_partitioned_pooled(&driver, &config, 1, 1, &supervision).report,
        );
        for (threads, pool_size) in [
            (1usize, 2usize),
            (1, 4),
            (workers, 1),
            (workers, 2),
            (workers, 4),
        ] {
            let run =
                run_campaign_partitioned_pooled(&driver, &config, threads, pool_size, &supervision);
            if render_report(&run.report) != baseline {
                eprintln!(
                    "FAIL: {path:?} flaky report diverged at {threads} workers, pool size {pool_size}"
                );
                std::process::exit(1);
            }
        }
        rendered.push(baseline);
    }
    if rendered[0] != rendered[1] {
        eprintln!("FAIL: AST and text execution paths rendered different flaky reports");
        std::process::exit(1);
    }

    // 4: the self-healing machinery keeps the committed fraction of the
    // healthy campaign's throughput.
    let overhead = measure_flaky(dialect);
    let ratio = overhead.ratio();
    if !ratio.is_finite() || ratio < FLOOR_PROBED_THROUGHPUT_RATIO {
        eprintln!(
            "FAIL: self-healing too expensive: probed/healthy throughput ratio {ratio:.3} \
             < floor {FLOOR_PROBED_THROUGHPUT_RATIO}"
        );
        std::process::exit(1);
    }

    println!(
        "flaky-check({dialect}): {} cases, {} capability drift(s), {} probe failure(s), \
         {} breaker trip(s) / {} recovery(ies) all ledgered, 0 false-positive logic bugs, \
         reports byte-identical across 1/{workers} workers x 1/2/4 pools x both paths, \
         probed/healthy throughput ratio {ratio:.3} (floor {FLOOR_PROBED_THROUGHPUT_RATIO})",
        reference.metrics.test_cases,
        reference.robustness.capability_drifts,
        reference.robustness.probe_failures,
        reference.robustness.breaker_trips,
        reference.robustness.breaker_recoveries,
    );
    std::process::exit(0);
}

// ------------------------------------------------------------ validation ----

/// Extracts the number following `"key": ` (top-level or nested).
fn number_after(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates the shape of a benchmark artifact: all expected keys present,
/// braces balanced, and the headline numbers parse to sane values.
///
/// # Errors
///
/// Returns a description of the first problem found.
fn validate_bench_json(json: &str) -> Result<(), String> {
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces ({opens} open, {closes} close)"));
    }
    for key in [
        "schema_version",
        "seed",
        "dialects",
        "queries_per_database",
        "dispatch",
        "eval",
        "txn",
        "concurrency",
        "snapshot",
        "cow",
        "text",
        "ast_tree",
        "ast",
        "speedup_ast_over_text",
        "speedup_compiled_over_tree",
        "txn_overhead",
        "txn_throughput_ratio",
        "isolation_throughput_ratio",
        "sessions_per_sec",
        "conflict_abort_rate",
        "begin_ns_per_table",
        "tables_snapshotted",
        "tables_cow_cloned",
        "cow_clone_rate",
        "conflicts_avoided",
        "robustness",
        "storm_test_cases",
        "incidents",
        "retries",
        "watchdog_trips",
        "quarantines",
        "infra_failures",
        "observed_infra_kinds",
        "false_positive_logic_bugs",
        "resilience",
        "probed_throughput_ratio",
        "capability_drifts",
        "probe_failures",
        "breaker_trips",
        "breaker_recoveries",
        "flaky_false_positives",
        "observability",
        "traced_throughput_ratio",
        "trace_statements",
        "jsonl_lines",
        "coverage",
        "coverage_throughput_ratio",
        "distinct_features_uniform",
        "distinct_features_directed",
        "engine_points",
        "saturation_novel",
        "parallel",
        "ci_floors",
        "min_speedup_ast_over_text",
        "min_speedup_compiled_over_tree",
        "min_txn_throughput_ratio",
        "min_isolation_throughput_ratio",
        "min_traced_throughput_ratio",
        "min_coverage_throughput_ratio",
        "min_probed_throughput_ratio",
    ] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key \"{key}\""));
        }
    }
    let schema = number_after(json, "schema_version")
        .ok_or_else(|| "schema_version is not a number".to_string())?;
    if schema < 9.0 {
        return Err(format!(
            "schema_version {schema} predates the resilience (self-healing pool) gate"
        ));
    }
    match number_after(json, "false_positive_logic_bugs") {
        Some(0.0) => {}
        Some(v) => {
            return Err(format!(
                "robustness block reports {v} false-positive logic bugs, must be 0"
            ))
        }
        None => return Err("false_positive_logic_bugs is not a number".to_string()),
    }
    match number_after(json, "flaky_false_positives") {
        Some(0.0) => {}
        Some(v) => {
            return Err(format!(
                "resilience block reports {v} false-positive logic bugs, must be 0"
            ))
        }
        None => return Err("flaky_false_positives is not a number".to_string()),
    }
    match number_after(json, "storm_test_cases") {
        Some(v) if v > 0.0 => {}
        Some(v) => return Err(format!("fault-storm campaign ran {v} cases")),
        None => return Err("storm_test_cases is not a number".to_string()),
    }
    match number_after(json, "distinct_features_directed") {
        Some(v) if v > 0.0 => {}
        Some(v) => return Err(format!("coverage block reports {v} distinct features")),
        None => return Err("distinct_features_directed is not a number".to_string()),
    }
    for key in [
        "speedup_ast_over_text",
        "speedup_compiled_over_tree",
        "txn_overhead",
        "txn_throughput_ratio",
        "isolation_throughput_ratio",
        "traced_throughput_ratio",
        "coverage_throughput_ratio",
        "probed_throughput_ratio",
        "begin_ns_per_table",
    ] {
        let v = number_after(json, key).ok_or_else(|| format!("\"{key}\" is not a number"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("\"{key}\" has implausible value {v}"));
        }
    }
    // Every arm (dispatch text/ast, eval ast_tree/ast, txn ast,
    // concurrency ast) must have run a nonzero campaign — check all
    // occurrences, not just the first.
    let mut arm_count = 0usize;
    let mut scan = json;
    while let Some(at) = scan.find("\"test_cases\":") {
        let tail = &scan[at..];
        match number_after(tail, "test_cases") {
            Some(v) if v > 0.0 => arm_count += 1,
            Some(v) => return Err(format!("an arm has test_cases {v}, campaign ran nothing")),
            None => return Err("test_cases is not a number".to_string()),
        }
        scan = &scan[at + "\"test_cases\":".len()..];
    }
    if arm_count < 6 {
        return Err(format!(
            "expected test_cases in all 6 arms, found {arm_count}"
        ));
    }
    Ok(())
}

fn validate_file(path: &str) -> ! {
    match std::fs::read_to_string(path) {
        Ok(json) => match validate_bench_json(&json) {
            Ok(()) => {
                println!("{path}: OK (schema_version >= {SCHEMA_VERSION})");
                std::process::exit(0);
            }
            Err(why) => {
                eprintln!("{path}: INVALID: {why}");
                std::process::exit(1);
            }
        },
        Err(err) => {
            eprintln!("{path}: unreadable: {err}");
            std::process::exit(1);
        }
    }
}

/// The CI wire-backend smoke gate: a full campaign (TLP + NoREC + the
/// rollback oracle) against the real system `sqlite3` binary over the
/// subprocess driver, through a 2-connection pool. The platform sees only
/// SQL text and error strings; everything it cannot parse must surface as
/// learned invalidity, never as a bug — real SQLite does not have the
/// logic bugs this generator could expose, so **any** bug report is a
/// false positive and fails the gate.
///
/// Skips with a visible notice (exit 0) when no working `sqlite3` binary
/// is on `PATH`, so the offline build stays green.
fn sqlite_check() -> ! {
    silence_infra_panics();
    let driver = SqliteProcDriver::system();
    if !driver.available() {
        println!("sqlite-check: SKIPPED (no working sqlite3 binary on PATH)");
        std::process::exit(0);
    }
    let mut config = CampaignConfig::builder()
        .seed(0x511E)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(45)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    let driver: Arc<dyn Driver> = Arc::new(driver);
    let mut pool = Pool::new(driver, 2).unwrap_or_else(|err| {
        eprintln!("FAIL: sqlite3 pool did not connect: {err}");
        std::process::exit(1);
    });
    let start = Instant::now();
    let mut campaign = Campaign::new(config);
    let report = campaign.run_pooled(&mut pool, &SupervisorConfig::default());
    let elapsed = start.elapsed().as_secs_f64();
    if report.degraded || report.robustness.quarantines > 0 {
        eprintln!(
            "FAIL: sqlite campaign degraded (quarantines {})",
            report.robustness.quarantines
        );
        std::process::exit(1);
    }
    if report.metrics.test_cases == 0 || report.metrics.valid_test_cases == 0 {
        eprintln!(
            "FAIL: sqlite campaign ran {} cases, {} valid — the wire backend did nothing",
            report.metrics.test_cases, report.metrics.valid_test_cases
        );
        std::process::exit(1);
    }
    if !report.reports.is_empty() {
        eprintln!(
            "FAIL: {} bug report(s) against real sqlite3 — all false positives:",
            report.reports.len()
        );
        for bug in &report.reports {
            eprintln!("  [{:?}] {}", bug.oracle, bug.description);
        }
        std::process::exit(1);
    }
    println!(
        "sqlite-check: {} cases ({:.0}% valid), {} ddl statements, 0 false positives, \
         pool size 2, {elapsed:.2}s",
        report.metrics.test_cases,
        report.metrics.validity_rate() * 100.0,
        report.metrics.ddl_statements,
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => validate_file(path),
            None => {
                eprintln!("usage: campaign_throughput --validate <path>");
                std::process::exit(1);
            }
        }
    }
    if args.get(1).map(String::as_str) == Some("--partitioned-check") {
        partitioned_check(args.get(2).map(String::as_str).unwrap_or("mariadb"));
    }
    if args.get(1).map(String::as_str) == Some("--fault-storm-check") {
        fault_storm_check(args.get(2).map(String::as_str).unwrap_or("sqlite"));
    }
    if args.get(1).map(String::as_str) == Some("--trace-check") {
        trace_check(args.get(2).map(String::as_str).unwrap_or("dolt"));
    }
    if args.get(1).map(String::as_str) == Some("--coverage-check") {
        coverage_check(args.get(2).map(String::as_str).unwrap_or("dolt"));
    }
    if args.get(1).map(String::as_str) == Some("--flaky-check") {
        flaky_check(args.get(2).map(String::as_str).unwrap_or("sqlite"));
    }
    if args.get(1).map(String::as_str) == Some("--sqlite-check") {
        sqlite_check();
    }
    silence_infra_panics();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let output = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let dispatch = dispatch_config(queries);
    let eval = eval_config(queries);
    let txn = txn_config(queries);
    let concurrency = concurrency_config(queries);
    let threads = dbms_sim::available_threads();

    // Warm-up: touch every preset once so first-run effects (page faults,
    // lazy allocations) don't land on the first measured arm.
    let mut warm = dispatch.clone();
    warm.databases = 1;
    warm.queries_per_database = 5;
    let _ = run_fleet_serial(&fleet(), &warm, ExecutionPath::Ast);

    let dispatch_arms = run_arms(
        &dispatch,
        &[("text", ExecutionPath::Text), ("ast", ExecutionPath::Ast)],
        STMTS_PER_CASE_TLP_NOREC,
    );
    let [text, ast_small] = dispatch_arms
        .try_into()
        .unwrap_or_else(|_| unreachable!("run_arms returns one Arm per input"));
    let eval_arms = run_arms(
        &eval,
        &[
            ("ast_tree", ExecutionPath::AstTreeWalk),
            ("ast", ExecutionPath::Ast),
        ],
        STMTS_PER_CASE_TLP_NOREC,
    );
    let [ast_tree, ast] = eval_arms
        .try_into()
        .unwrap_or_else(|_| unreachable!("run_arms returns one Arm per input"));
    let txn_arms = run_arms(&txn, &[("txn", ExecutionPath::Ast)], STMTS_PER_CASE_TXN_MIX);
    let [txn_arm] = txn_arms
        .try_into()
        .unwrap_or_else(|_| unreachable!("run_arms returns one Arm per input"));
    let concurrency_arms = run_arms(
        &concurrency,
        &[("concurrency", ExecutionPath::Ast)],
        STMTS_PER_CASE_ISOLATION_MIX,
    );
    let [concurrency_arm] = concurrency_arms
        .try_into()
        .unwrap_or_else(|_| unreachable!("run_arms returns one Arm per input"));

    let snapshot = snapshot_micro();

    // The robustness workload: the dispatch-sized campaign under a full
    // fault storm, supervised. Reported for the counters, gated (much more
    // thoroughly) by `--fault-storm-check`.
    let storm_start = Instant::now();
    let storm = run_storm("sqlite", FaultyConfig::storm());
    let storm_elapsed = storm_start.elapsed().as_secs_f64();
    let storm_false_positives = false_positive_logic_bugs(&storm);
    assert_eq!(
        storm_false_positives, 0,
        "infrastructure faults surfaced as logic bugs"
    );

    // The observability workload: the txn schedule on one dialect,
    // untraced vs fully traced. Gated here against the committed floor via
    // `ci.sh`; gated (much more thoroughly) by `--trace-check`.
    let trace_overhead = measure_trace_overhead("dolt", queries);
    let traced_ratio = trace_overhead.ratio();
    let trace_totals = trace_overhead.tracer.summary().dialects.values().fold(
        sqlancer_core::TraceCounters::default(),
        |mut acc, trace| {
            acc.merge(&trace.counters);
            acc
        },
    );
    let trace_jsonl_lines = trace_overhead
        .tracer
        .jsonl()
        .map(|text| validate_jsonl(&text).expect("tracer JSONL must be well-formed"))
        .unwrap_or(0);
    let trace_pinned = trace_overhead
        .tracer
        .recorder()
        .map(|recorder| recorder.pinned().len())
        .unwrap_or(0);
    assert_eq!(
        trace_totals.cases, trace_overhead.report.metrics.test_cases,
        "the trace summary must account for every test case"
    );

    // The coverage workload: the txn schedule with atlas accounting off
    // vs on, plus one directed run. Gated here against the committed
    // floor via `ci.sh`; gated (much more thoroughly) by
    // `--coverage-check`.
    let coverage = measure_coverage_overhead("dolt", COVERAGE_CASE_BUDGET);
    let coverage_ratio = coverage.ratio();
    let coverage_uniform_features = coverage.uniform.coverage.distinct_features();
    let coverage_directed_features = coverage.directed.coverage.distinct_features();

    // The resilience workload: the storm schedule through a probing
    // 2-connection pool, healthy vs flaky backend. Gated here against the
    // committed floor via `ci.sh`; gated (much more thoroughly) by
    // `--flaky-check`.
    let flaky = measure_flaky("sqlite");
    let probed_ratio = flaky.ratio();
    let flaky_false_positives = false_positive_logic_bugs(&flaky.report);
    assert_eq!(
        flaky_false_positives, 0,
        "flaky-backend faults surfaced as logic bugs"
    );
    assert!(
        !flaky.report.degraded && flaky.report.robustness.capability_drifts > 0,
        "the lying driver must be probed and downgraded without degrading the campaign"
    );

    let par_start = Instant::now();
    let par_report = run_fleet_parallel(&fleet(), &eval, ExecutionPath::Ast, threads);
    let par_elapsed = par_start.elapsed().as_secs_f64();

    // Consistency checks: arms sharing a workload must have run the same
    // campaign, and the parallel run must reproduce the serial AST run
    // exactly. A divergence means the compiled evaluator (or the parallel
    // runner) changed semantics, not just speed.
    assert_eq!(
        text.report.totals, ast_small.report.totals,
        "text and AST arms diverged — parity broken"
    );
    assert_eq!(
        ast_tree.report.totals, ast.report.totals,
        "tree-walk and compiled arms diverged — compiled-evaluator parity broken"
    );
    assert_eq!(
        ast.report.totals, par_report.totals,
        "parallel run diverged from serial — determinism broken"
    );

    let speedup = text.elapsed_s / ast_small.elapsed_s;
    let compiled_speedup = ast_tree.elapsed_s / ast.elapsed_s;
    let parallel_speedup = ast.elapsed_s / par_elapsed;
    // Per-test-case cost ratio of the transactional schedule vs the plain
    // eval schedule (the rollback oracle's reset-and-replay arms dominate).
    let txn_ratio = txn_arm.test_cases_per_sec() / ast.test_cases_per_sec();
    let txn_overhead = 1.0 / txn_ratio;
    // Same ratio for the concurrency schedule (per-BEGIN database clones
    // plus serial replays dominate).
    let isolation_ratio = concurrency_arm.test_cases_per_sec() / ast.test_cases_per_sec();
    let conflict_abort_rate = concurrency_arm.report.totals.conflict_abort_rate();

    println!("dispatch workload (1-row tables):");
    for arm in [&text, &ast_small] {
        println!(
            "  {:<9} {:>8.3}s  {:>10.0} queries/s  ({} statements)",
            arm.label,
            arm.elapsed_s,
            arm.queries_per_sec(),
            arm.statements(),
        );
    }
    println!("eval workload (row-heavy tables):");
    for arm in [&ast_tree, &ast] {
        println!(
            "  {:<9} {:>8.3}s  {:>10.0} queries/s  ({} statements)",
            arm.label,
            arm.elapsed_s,
            arm.queries_per_sec(),
            arm.statements(),
        );
    }
    println!("txn workload (eval + rollback oracle):");
    println!(
        "  {:<9} {:>8.3}s  {:>10.1} cases/s  ({} statements)",
        txn_arm.label,
        txn_arm.elapsed_s,
        txn_arm.test_cases_per_sec(),
        txn_arm.statements(),
    );
    println!("concurrency workload (eval + isolation oracle):");
    println!(
        "  {:<9} {:>8.3}s  {:>10.1} cases/s  {:>8.1} sessions/s  ({:.0}% conflict aborts)",
        concurrency_arm.label,
        concurrency_arm.elapsed_s,
        concurrency_arm.test_cases_per_sec(),
        concurrency_arm.sessions_per_sec(),
        conflict_abort_rate * 100.0,
    );
    let cow = concurrency_arm.report.totals;
    println!(
        "  cow: {} begins, {} tables snapshotted, {} cloned ({:.1}% clone rate), \
         {} conflicts avoided by row-range intent",
        cow.txn_begins,
        cow.tables_snapshotted,
        cow.tables_cow_cloned,
        cow.cow_clone_rate() * 100.0,
        cow.conflicts_avoided,
    );
    println!(
        "snapshot micro ({} tables x {} rows): BEGIN {:.0} ns/table, {} cow clones",
        snapshot.tables,
        snapshot.rows_per_table,
        snapshot.begin_ns_per_table,
        snapshot.tables_cow_cloned,
    );
    println!(
        "fault storm (sqlite, all infra faults armed): {:.3}s, {} cases, {} incidents, \
         {} retries, {} watchdog trips, {} backoff ticks, {} false-positive logic bugs",
        storm_elapsed,
        storm.metrics.test_cases,
        storm.robustness.incidents,
        storm.robustness.retries,
        storm.robustness.watchdog_trips,
        storm.robustness.backoff_ticks,
        storm_false_positives,
    );
    println!(
        "observability (dolt, txn workload): untraced {:.3}s, traced {:.3}s \
         (throughput ratio {traced_ratio:.3}), {} statements traced, {} pinned record(s), \
         JSONL {} lines",
        trace_overhead.untraced_s,
        trace_overhead.traced_s,
        trace_totals.statements,
        trace_pinned,
        trace_jsonl_lines,
    );
    println!(
        "coverage (dolt, txn workload): baseline {:.3}s, atlas {:.3}s \
         (throughput ratio {coverage_ratio:.3}), distinct features {} uniform / {} directed, \
         {} engine points, {} novel features",
        coverage.baseline_s,
        coverage.atlas_s,
        coverage_uniform_features,
        coverage_directed_features,
        coverage.directed.coverage.engine.total_points(),
        coverage.directed.coverage.saturation.novel_features,
    );
    println!(
        "resilience (sqlite, flaky backend through probing pool): healthy {:.3}s, \
         flaky {:.3}s (throughput ratio {probed_ratio:.3}), {} capability drift(s), \
         {} probe failure(s), {} breaker trip(s) / {} recovery(ies), \
         {flaky_false_positives} false-positive logic bugs",
        flaky.healthy_s,
        flaky.flaky_s,
        flaky.report.robustness.capability_drifts,
        flaky.report.robustness.probe_failures,
        flaky.report.robustness.breaker_trips,
        flaky.report.robustness.breaker_recoveries,
    );
    println!(
        "parallel({threads} threads) {par_elapsed:>8.3}s  (x{parallel_speedup:.2} over serial AST)"
    );
    println!("AST-path speedup over text path:        x{speedup:.2}");
    println!("compiled-evaluator speedup over tree:   x{compiled_speedup:.2}");
    println!("txn-workload overhead over eval:        x{txn_overhead:.2}");
    println!("concurrency-workload throughput ratio:  {isolation_ratio:.3}");

    let storm_kinds = format!(
        "[{}]",
        observed_infra_kinds(&storm)
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let flaky_kinds = format!(
        "[{}]",
        observed_infra_kinds(&flaky.report)
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let json = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"seed\": {},\n  \"dialects\": {},\n  \
         \"queries_per_database\": {},\n  \
         \"dispatch\": {{\"max_insert_rows\": 1, \"text\": {}, \"ast\": {}}},\n  \
         \"eval\": {{\"max_insert_rows\": {}, \"ast_tree\": {}, \"ast\": {}}},\n  \
         \"txn\": {{\"oracles\": \"tlp+norec+rollback\", \"ast\": {}}},\n  \
         \"concurrency\": {{\"oracles\": \"tlp+norec+isolation\", \"ast\": {}, \
         \"sessions_per_sec\": {sessions_per_sec:.1}, \
         \"isolation_schedules\": {isolation_schedules}, \
         \"conflict_abort_rate\": {conflict_abort_rate:.3}}},\n  \
         \"snapshot\": {{\"tables\": {snap_tables}, \"rows_per_table\": {snap_rows}, \
         \"begin_rollback_iters\": {snap_iters}, \
         \"begin_ns_per_table\": {begin_ns_per_table:.1}, \
         \"tables_snapshotted\": {snap_shared}, \"tables_cow_cloned\": {snap_cloned}}},\n  \
         \"cow\": {{\"txn_begins\": {cow_begins}, \
         \"tables_snapshotted\": {cow_snapshotted}, \
         \"tables_cow_cloned\": {cow_cloned}, \
         \"cow_clone_rate\": {cow_clone_rate:.4}, \
         \"conflicts_avoided\": {cow_avoided}}},\n  \
         \"robustness\": {{\"dialect\": \"sqlite\", \"faults\": \"storm\", \
         \"elapsed_s\": {storm_elapsed:.4}, \"storm_test_cases\": {storm_cases}, \
         \"incidents\": {storm_incidents}, \"retries\": {storm_retries}, \
         \"watchdog_trips\": {storm_watchdog}, \"backoff_ticks\": {storm_backoff}, \
         \"quarantines\": {storm_quarantines}, \"oracle_panics\": {storm_panics}, \
         \"infra_failures\": {storm_infra_failures}, \
         \"storage_metric_errors\": {storm_storage_errors}, \
         \"recovered_workers\": {storm_recovered}, \
         \"observed_infra_kinds\": {storm_kinds}, \
         \"false_positive_logic_bugs\": {storm_false_positives}}},\n  \
         \"resilience\": {{\"dialect\": \"sqlite\", \"faults\": \"flaky\", \"pool_size\": 2, \
         \"healthy_elapsed_s\": {flaky_healthy_s:.4}, \
         \"flaky_elapsed_s\": {flaky_elapsed_s:.4}, \
         \"probed_throughput_ratio\": {probed_ratio:.3}, \
         \"capability_drifts\": {flaky_drifts}, \
         \"probe_failures\": {flaky_probe_failures}, \
         \"breaker_trips\": {flaky_trips}, \
         \"breaker_recoveries\": {flaky_recoveries}, \
         \"observed_infra_kinds\": {flaky_kinds}, \
         \"flaky_false_positives\": {flaky_false_positives}}},\n  \
         \"observability\": {{\"dialect\": \"dolt\", \"workload\": \"txn\", \
         \"untraced_elapsed_s\": {trace_untraced_s:.4}, \
         \"traced_elapsed_s\": {trace_traced_s:.4}, \
         \"traced_throughput_ratio\": {traced_ratio:.3}, \
         \"trace_cases\": {trace_cases}, \"trace_statements\": {trace_statements}, \
         \"trace_case_ticks\": {trace_case_ticks}, \
         \"pinned_records\": {trace_pinned}, \"jsonl_lines\": {trace_jsonl_lines}}},\n  \
         \"coverage\": {{\"dialect\": \"dolt\", \"workload\": \"txn\", \
         \"queries_per_database\": {COVERAGE_CASE_BUDGET}, \
         \"baseline_elapsed_s\": {coverage_baseline_s:.4}, \
         \"atlas_elapsed_s\": {coverage_atlas_s:.4}, \
         \"coverage_throughput_ratio\": {coverage_ratio:.3}, \
         \"distinct_features_uniform\": {coverage_uniform_features}, \
         \"distinct_features_directed\": {coverage_directed_features}, \
         \"engine_points\": {coverage_engine_points}, \
         \"saturation_novel\": {coverage_saturation_novel}, \
         \"longest_dry_run\": {coverage_longest_dry}}},\n  \
         \"speedup_ast_over_text\": {speedup:.3},\n  \
         \"speedup_compiled_over_tree\": {compiled_speedup:.3},\n  \
         \"txn_overhead\": {txn_overhead:.3},\n  \
         \"txn_throughput_ratio\": {txn_ratio:.3},\n  \
         \"isolation_throughput_ratio\": {isolation_ratio:.3},\n  \
         \"parallel\": {{\"threads\": {threads}, \"elapsed_s\": {par_elapsed:.4}, \
         \"speedup_over_serial_ast\": {parallel_speedup:.3}}},\n  \
         \"ci_floors\": {{\"min_speedup_ast_over_text\": {FLOOR_AST_OVER_TEXT}, \
         \"min_speedup_compiled_over_tree\": {FLOOR_COMPILED_OVER_TREE}, \
         \"min_txn_throughput_ratio\": {FLOOR_TXN_THROUGHPUT_RATIO}, \
         \"min_isolation_throughput_ratio\": {FLOOR_ISOLATION_THROUGHPUT_RATIO}, \
         \"min_traced_throughput_ratio\": {FLOOR_TRACED_THROUGHPUT_RATIO}, \
         \"min_coverage_throughput_ratio\": {SMOKE_FLOOR_COVERAGE_THROUGHPUT_RATIO}, \
         \"min_probed_throughput_ratio\": {FLOOR_PROBED_THROUGHPUT_RATIO}}}\n}}\n",
        dispatch.seed,
        fleet().len(),
        queries,
        text.json(),
        ast_small.json(),
        eval.generator.max_insert_rows,
        ast_tree.json(),
        ast.json(),
        txn_arm.json(),
        concurrency_arm.json(),
        sessions_per_sec = concurrency_arm.sessions_per_sec(),
        isolation_schedules = concurrency_arm.report.totals.isolation_schedules,
        snap_tables = snapshot.tables,
        snap_rows = snapshot.rows_per_table,
        snap_iters = snapshot.iterations,
        begin_ns_per_table = snapshot.begin_ns_per_table,
        snap_shared = snapshot.tables_snapshotted,
        snap_cloned = snapshot.tables_cow_cloned,
        storm_cases = storm.metrics.test_cases,
        storm_incidents = storm.robustness.incidents,
        storm_retries = storm.robustness.retries,
        storm_watchdog = storm.robustness.watchdog_trips,
        storm_backoff = storm.robustness.backoff_ticks,
        storm_quarantines = storm.robustness.quarantines,
        storm_panics = storm.robustness.oracle_panics,
        storm_infra_failures = storm.robustness.infra_failures,
        storm_storage_errors = storm.robustness.storage_metric_errors,
        storm_recovered = storm.robustness.recovered_workers,
        flaky_healthy_s = flaky.healthy_s,
        flaky_elapsed_s = flaky.flaky_s,
        flaky_drifts = flaky.report.robustness.capability_drifts,
        flaky_probe_failures = flaky.report.robustness.probe_failures,
        flaky_trips = flaky.report.robustness.breaker_trips,
        flaky_recoveries = flaky.report.robustness.breaker_recoveries,
        trace_untraced_s = trace_overhead.untraced_s,
        trace_traced_s = trace_overhead.traced_s,
        trace_cases = trace_totals.cases,
        trace_statements = trace_totals.statements,
        trace_case_ticks = trace_totals.case_ticks,
        coverage_baseline_s = coverage.baseline_s,
        coverage_atlas_s = coverage.atlas_s,
        coverage_engine_points = coverage.directed.coverage.engine.total_points(),
        coverage_saturation_novel = coverage.directed.coverage.saturation.novel_features,
        coverage_longest_dry = coverage.directed.coverage.saturation.longest_dry_run,
        cow_begins = cow.txn_begins,
        cow_snapshotted = cow.tables_snapshotted,
        cow_cloned = cow.tables_cow_cloned,
        cow_clone_rate = cow.cow_clone_rate(),
        cow_avoided = cow.conflicts_avoided,
    );
    std::fs::write(&output, &json).expect("write benchmark output");

    // Self-check: a malformed or partial artifact must fail the process,
    // not silently pass a later grep. Read back what actually hit disk.
    let written = std::fs::read_to_string(&output).expect("read back benchmark output");
    if let Err(why) = validate_bench_json(&written) {
        eprintln!("{output}: written artifact failed validation: {why}");
        std::process::exit(2);
    }
    println!("wrote {output}");
}
