//! Campaign-throughput benchmark: the same fixed-seed fleet campaign run
//! through the legacy text path (render → lex → parse per statement) and
//! the AST fast path, plus serial vs parallel fleet sharding.
//!
//! Writes `BENCH_campaign.json` with queries/sec per mode, statement counts
//! (the allocations proxy: every statement on the text path costs at least
//! one rendered `String` plus a parse), the AST/text speedup ratio and the
//! parallel/serial speedup.
//!
//! Usage: `campaign_throughput [queries_per_database] [output_path]`

use dbms_sim::{fleet, run_fleet_parallel, run_fleet_serial, ExecutionPath, FleetReport};
use sqlancer_core::{CampaignConfig, OracleKind};
use std::time::Instant;

fn bench_config(queries_per_database: usize) -> CampaignConfig {
    let mut config = CampaignConfig {
        seed: 0xBE,
        databases: 2,
        ddl_per_database: 12,
        queries_per_database,
        oracles: vec![OracleKind::Tlp, OracleKind::NoRec],
        reduce_bugs: false,
        max_reduction_checks: 24,
        ..CampaignConfig::default()
    };
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    // Small database states: the benchmark measures platform dispatch
    // overhead (render/lex/parse vs direct AST), not engine scan cost.
    config.generator.max_insert_rows = 1;
    config
}

struct Arm {
    label: &'static str,
    elapsed_s: f64,
    report: FleetReport,
}

impl Arm {
    /// DBMS-visible statements issued: DDL/DML plus the derived oracle
    /// queries (TLP issues 4 per test case, NoREC 2, so 3 on average with
    /// the alternating schedule).
    fn statements(&self) -> u64 {
        self.report.totals.ddl_statements + 3 * self.report.totals.test_cases
    }

    fn test_cases_per_sec(&self) -> f64 {
        self.report.totals.test_cases as f64 / self.elapsed_s
    }

    fn queries_per_sec(&self) -> f64 {
        3.0 * self.report.totals.test_cases as f64 / self.elapsed_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"elapsed_s\": {:.4}, \"test_cases\": {}, \"ddl_statements\": {}, \
             \"statements\": {}, \"test_cases_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \
             \"detected_bug_cases\": {}}}",
            self.elapsed_s,
            self.report.totals.test_cases,
            self.report.totals.ddl_statements,
            self.statements(),
            self.test_cases_per_sec(),
            self.queries_per_sec(),
            self.report.totals.detected_bug_cases,
        )
    }
}

/// Runs both arms five times in alternation and keeps each arm's fastest
/// run. The minimum is the standard noise filter on a shared machine
/// (scheduler interference only ever adds time, never removes it), and
/// interleaving exposes both arms to the same machine conditions. All
/// repetitions produce identical reports (the campaign is deterministic),
/// so only the timing differs.
fn run_arms(config: &CampaignConfig) -> (Arm, Arm) {
    let presets = fleet();
    let mut best: [Option<Arm>; 2] = [None, None];
    for _ in 0..5 {
        for (slot, (label, path)) in [("text", ExecutionPath::Text), ("ast", ExecutionPath::Ast)]
            .into_iter()
            .enumerate()
        {
            let start = Instant::now();
            let report = run_fleet_serial(&presets, config, path);
            let elapsed_s = start.elapsed().as_secs_f64();
            if best[slot].as_ref().is_none_or(|b| elapsed_s < b.elapsed_s) {
                best[slot] = Some(Arm {
                    label,
                    elapsed_s,
                    report,
                });
            }
        }
    }
    let [text, ast] = best;
    (
        text.expect("five repetitions produce a best"),
        ast.expect("five repetitions produce a best"),
    )
}

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let output = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let config = bench_config(queries);
    let threads = dbms_sim::available_threads();

    // Warm-up: touch every preset once so first-run effects (page faults,
    // lazy allocations) don't land on the first measured arm.
    let mut warm = config.clone();
    warm.databases = 1;
    warm.queries_per_database = 5;
    let _ = run_fleet_serial(&fleet(), &warm, ExecutionPath::Ast);

    let (text, ast) = run_arms(&config);

    let par_start = Instant::now();
    let par_report = run_fleet_parallel(&fleet(), &config, ExecutionPath::Ast, threads);
    let par_elapsed = par_start.elapsed().as_secs_f64();

    // Consistency checks: the arms must have run the same campaign, and the
    // parallel run must reproduce the serial AST run exactly.
    assert_eq!(
        text.report.totals, ast.report.totals,
        "text and AST arms diverged — parity broken"
    );
    assert_eq!(
        ast.report.totals, par_report.totals,
        "parallel run diverged from serial — determinism broken"
    );

    let speedup = text.elapsed_s / ast.elapsed_s;
    let parallel_speedup = ast.elapsed_s / par_elapsed;

    for arm in [&text, &ast] {
        println!(
            "{:<6} {:>8.3}s  {:>10.0} queries/s  ({} statements)",
            arm.label,
            arm.elapsed_s,
            arm.queries_per_sec(),
            arm.statements(),
        );
    }
    println!(
        "parallel({threads} threads) {par_elapsed:>8.3}s  (x{parallel_speedup:.2} over serial AST)"
    );
    println!("AST-path speedup over text path: x{speedup:.2}");

    let json = format!
(
        "{{\n  \"seed\": {},\n  \"dialects\": {},\n  \"queries_per_database\": {},\n  \
         \"text\": {},\n  \"ast\": {},\n  \"speedup_ast_over_text\": {:.3},\n  \
         \"parallel\": {{\"threads\": {}, \"elapsed_s\": {:.4}, \"speedup_over_serial_ast\": {:.3}}}\n}}\n",
        config.seed,
        fleet().len(),
        queries,
        text.json(),
        ast.json(),
        speedup,
        threads,
        par_elapsed,
        parallel_speedup,
    );
    std::fs::write(&output, json).expect("write benchmark output");
    println!("wrote {output}");
}
