//! Figure 1 reproduction: per-DBMS adaptation effort.
//!
//! The paper contrasts the thousands of lines of DBMS-specific generator
//! code that SQLancer/Squirrel/SQLsmith/EET require with the ~16 lines per
//! DBMS that SQLancer++ needs. In this reproduction the analogue is:
//!
//! * "hand-written generator size" — the number of dialect-specific feature
//!   decisions a hand-written generator must encode (the size of the
//!   dialect's supported feature universe), and
//! * "SQLancer++ adaptation size" — the number of per-dialect configuration
//!   items (connection parameters + behavioural quirks).

use dbms_sim::fleet;

fn main() {
    println!("# Figure 1 — per-DBMS adaptation effort (reproduction proxy)");
    println!();
    println!("| dialect | hand-written generator decisions | SQLancer++ adaptation items |");
    println!("|---|---|---|");
    let mut handwritten_total = 0usize;
    let mut adaptive_total = 0usize;
    for preset in fleet() {
        let handwritten = preset.profile.supported_universe().len();
        // Connection parameters (host, port, user, password) plus quirks.
        let adaptation = 4
            + usize::from(preset.profile.requires_refresh)
            + usize::from(preset.profile.requires_commit);
        handwritten_total += handwritten;
        adaptive_total += adaptation;
        println!(
            "| {} | {} | {} |",
            preset.profile.name, handwritten, adaptation
        );
    }
    let n = fleet().len();
    println!();
    println!(
        "Average hand-written generator decisions per DBMS: {:.1}",
        handwritten_total as f64 / n as f64
    );
    println!(
        "Average SQLancer++ adaptation items per DBMS:      {:.1}",
        adaptive_total as f64 / n as f64
    );
    println!(
        "Reduction factor: {:.0}x",
        handwritten_total as f64 / adaptive_total as f64
    );
    println!();
    println!(
        "(Paper: SQLancer needs a median of ~3.7K LoC per DBMS-specific generator; \
         SQLancer++ needs ~16 LoC per DBMS. The reproduction preserves the shape: \
         a two-orders-of-magnitude gap between hand-written dialect knowledge and \
         per-DBMS adaptation.)"
    );
}
