//! Micro-benchmark for the expression evaluators: tree-walking vs
//! closure-compiled, plus the one-time compile and plan-cache-key costs.
//!
//! Prints mean nanoseconds per operation for a few representative predicate
//! shapes over a small in-memory row set. Used to attribute
//! `campaign_throughput` deltas to per-row evaluation vs per-statement
//! compilation.

use sql_engine::{
    compile_expr, Database, EngineConfig, Evaluator, ExecutionMode, RelationBinding, Scope,
};
use sqlancer_core as _;
use std::time::{Duration, Instant};

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..32 {
        f();
    }
    let budget = Duration::from_millis(150);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..64 {
            f();
        }
        iters += 64;
    }
    let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<48} {nanos:>10.1} ns/iter");
}

fn main() {
    let db = Database::new(EngineConfig::dynamic());
    let bindings = vec![RelationBinding::new(
        "t0",
        vec!["c0".to_string(), "c1".to_string(), "c2".to_string()],
    )];
    let rows: Vec<Vec<sql_ast::Value>> = (0..8)
        .map(|i| {
            vec![
                sql_ast::Value::Integer(i),
                sql_ast::Value::text(format!("v{i}")),
                sql_ast::Value::Real(i as f64 * 0.5),
            ]
        })
        .collect();
    let evaluator = Evaluator::new(&db, ExecutionMode::Optimized);

    for (label, sql) in [
        ("simple", "c0 = 3"),
        ("medium", "(c0 > 1 AND c1 LIKE 'v%') OR c2 IS NULL"),
        (
            "wide",
            "c0 + 1 = 4 AND c2 * 2.0 < 10.0 AND UPPER(c1) = 'V3'",
        ),
        ("const", "1 + 2 * 3 = 7"),
    ] {
        let expr = sql_parser::parse_expression(sql).unwrap();
        bench(&format!("tree/{label} (8 rows)"), || {
            for row in &rows {
                let scope = Scope::new(&bindings, row);
                std::hint::black_box(evaluator.eval(&expr, &scope).ok());
            }
        });
        let compiled = compile_expr(&db, ExecutionMode::Optimized, &bindings, &expr);
        bench(&format!("compiled/{label} (8 rows)"), || {
            for row in &rows {
                let scope = Scope::new(&bindings, row);
                std::hint::black_box(compiled.eval(&evaluator, &scope).ok());
            }
        });
        bench(&format!("compile+cache-hit/{label}"), || {
            std::hint::black_box(compile_expr(
                &db,
                ExecutionMode::Optimized,
                &bindings,
                &expr,
            ));
        });
        // Dropping the cached plans before each compile makes every
        // iteration a cold one-time compile (plus the cache insert) without
        // timing the construction of a fresh database.
        bench(&format!("compile-cold/{label}"), || {
            db.reset_coverage();
            std::hint::black_box(compile_expr(
                &db,
                ExecutionMode::Optimized,
                &bindings,
                &expr,
            ));
        });
    }
}
