//! Table 4 reproduction: query validity rate with and without feedback.
//!
//! The paper reports the fraction of generated test cases whose queries all
//! execute successfully, for SQLancer++ (feedback), SQLancer++ Rand (no
//! feedback) and SQLancer (hand-written generators), on SQLite, PostgreSQL
//! and DuckDB. Pass `--series` to also print the convergence series
//! (Section 5.4 observes convergence within a minute).

use bench::{experiment_campaign_config, run_campaign, GeneratorArm};
use dbms_sim::validity_experiment_dialects;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let series = args.iter().any(|a| a == "--series");
    let queries: usize = args
        .iter()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(400);

    println!("# Table 4 — validity rate by generator arm (reproduction)");
    println!();
    println!("| approach | dialect | validity rate | DDL validity |");
    println!("|---|---|---|---|");
    for arm in [
        GeneratorArm::Adaptive,
        GeneratorArm::Random,
        GeneratorArm::PerfectKnowledge,
    ] {
        for preset in validity_experiment_dialects() {
            let config = experiment_campaign_config(11, queries, arm);
            let outcome = run_campaign(&preset, config, arm);
            println!(
                "| {} | {} | {} | {} |",
                arm.label(),
                outcome.dialect,
                bench::pct(outcome.report.metrics.validity_rate()),
                bench::pct(outcome.report.metrics.ddl_validity_rate()),
            );
            if series {
                let rendered: Vec<String> = outcome
                    .report
                    .validity_series
                    .iter()
                    .map(|v| format!("{:.2}", v))
                    .collect();
                println!(
                    "|   (series) | {} | {} | |",
                    outcome.dialect,
                    rendered.join(" → ")
                );
            }
        }
    }
    println!();
    println!(
        "(Paper shape to check: feedback raises the validity rate substantially over the \
         Rand arm — by ~293% on SQLite and ~122% on PostgreSQL — with the dynamically \
         typed dialect reaching the highest absolute rate.)"
    );
}
