//! Table 3 reproduction: engine coverage under different generator arms.
//!
//! The paper measures gcov line/branch coverage of SQLite, PostgreSQL and
//! DuckDB under SQLancer++, SQLancer++ Rand and SQLancer. The reproduction
//! measures the simulated engine's operator/feature coverage (see
//! `sql_engine::CoverageTracker`), which preserves the relative comparison.

use bench::{experiment_campaign_config, run_campaign, GeneratorArm};
use dbms_sim::validity_experiment_dialects;

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("# Table 3 — engine coverage by generator arm (reproduction)");
    println!();
    println!(
        "| approach | dialect | feature coverage (line proxy) | category coverage (branch proxy) |"
    );
    println!("|---|---|---|---|");
    for arm in [
        GeneratorArm::Adaptive,
        GeneratorArm::Random,
        GeneratorArm::PerfectKnowledge,
    ] {
        for preset in validity_experiment_dialects() {
            let mut config = experiment_campaign_config(7, queries, arm);
            // A single database state per run so the coverage tracker is not
            // reset mid-campaign.
            config.databases = 1;
            config.queries_per_database = queries;
            let outcome = run_campaign(&preset, config, arm);
            println!(
                "| {} | {} | {:.1}% | {:.1}% |",
                arm.label(),
                outcome.dialect,
                outcome.coverage_pct,
                outcome.coverage_strict_pct
            );
        }
    }
    println!();
    println!(
        "(Paper shape to check: the hand-written/perfect-knowledge generator reaches the \
         highest coverage, SQLancer++ with feedback is close behind, and disabling \
         feedback costs a little coverage — while, per Table 2, SQLancer++ still finds \
         bugs the baseline misses.)"
    );
}
