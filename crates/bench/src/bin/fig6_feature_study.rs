//! Figure 6 reproduction: cross-dialect validity of bug-inducing test cases.
//!
//! For each source dialect the harness collects the prioritized bug-inducing
//! cases of a campaign, then replays every case's statements on every target
//! dialect and reports the average fraction that executes successfully — the
//! heatmap of the paper's SQL feature study.

use bench::{experiment_campaign_config, run_campaign, GeneratorArm};
use dbms_sim::fleet;
use sqlancer_core::replay_validity;

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let presets = fleet();
    println!("# Figure 6 — cross-dialect validity of bug-inducing test cases (reproduction)");
    println!();

    // Collect prioritized cases per source dialect.
    let mut cases_per_source = Vec::new();
    for preset in &presets {
        let config = experiment_campaign_config(0xFEED, queries, GeneratorArm::Adaptive);
        let outcome = run_campaign(preset, config, GeneratorArm::Adaptive);
        cases_per_source.push((
            preset.profile.name.clone(),
            outcome.report.prioritized_cases,
        ));
    }

    // Header.
    let names: Vec<String> = presets.iter().map(|p| p.profile.name.clone()).collect();
    println!("| source \\ target | {} |", names.join(" | "));
    println!("|---{}|", "|---".repeat(names.len()));

    let mut grand_total = 0.0;
    let mut grand_count = 0usize;
    let mut universal_cases = 0usize;
    let mut total_cases = 0usize;
    for (source, cases) in &cases_per_source {
        let mut cells = Vec::new();
        for target_preset in &presets {
            if cases.is_empty() {
                cells.push("-".to_string());
                continue;
            }
            let mut target = target_preset.instantiate();
            let avg: f64 = cases
                .iter()
                .map(|c| replay_validity(&mut target, c))
                .sum::<f64>()
                / cases.len() as f64;
            grand_total += avg;
            grand_count += 1;
            cells.push(format!("{:.2}", avg));
        }
        // Count cases valid on every dialect.
        total_cases += cases.len();
        for case in cases {
            let everywhere = presets.iter().all(|p| {
                let mut target = p.instantiate();
                (replay_validity(&mut target, case) - 1.0).abs() < 1e-9
            });
            if everywhere {
                universal_cases += 1;
            }
        }
        println!("| {} | {} |", source, cells.join(" | "));
    }
    println!();
    if grand_count > 0 {
        println!(
            "Overall average cross-dialect validity: {:.1}%",
            100.0 * grand_total / grand_count as f64
        );
    }
    println!(
        "Bug-inducing cases valid on all {} dialects: {} of {}",
        presets.len(),
        universal_cases,
        total_cases
    );
    println!();
    println!(
        "(Paper shape to check: overall cross-dialect validity is around 48%, and \
         essentially no bug-inducing case runs unchanged on every DBMS — dialects \
         genuinely differ even for 'common' SQL.)"
    );
}
