//! Table 5 reproduction: detected vs prioritized vs unique bugs on the
//! CrateDB-like dialect, with and without feedback, averaged over five
//! seeds.

use bench::{experiment_campaign_config, run_campaign, GeneratorArm};
use dbms_sim::preset_by_name;

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seeds = [11u64, 23, 37, 41, 53];
    let preset = preset_by_name("cratedb").expect("cratedb preset");
    println!("# Table 5 — bug prioritization on the CrateDB-like dialect (reproduction)");
    println!();
    println!("| approach | detected cases (avg) | prioritized (avg) | unique bugs (avg) |");
    println!("|---|---|---|---|");
    for arm in [GeneratorArm::Adaptive, GeneratorArm::Random] {
        let mut detected = 0.0;
        let mut prioritized = 0.0;
        let mut unique = 0.0;
        for &seed in &seeds {
            let config = experiment_campaign_config(seed, queries, arm);
            let outcome = run_campaign(&preset, config, arm);
            detected += outcome.report.metrics.detected_bug_cases as f64;
            prioritized += outcome.report.metrics.prioritized_bugs as f64;
            unique += outcome.unique_bugs.len() as f64;
        }
        let n = seeds.len() as f64;
        println!(
            "| {} | {:.1} | {:.1} | {:.1} |",
            arm.label(),
            detected / n,
            prioritized / n,
            unique / n
        );
    }
    println!();
    println!(
        "(Paper: 67,878 detected / 35.8 prioritized / 11.4 unique with feedback vs \
         55,412 / 28.4 / 9.8 without, in one hour. The reproduction's shape to check: \
         prioritization collapses the detected cases by orders of magnitude, the unique \
         count is a small fraction of the prioritized count, and the feedback arm finds \
         at least as many detected cases and unique bugs as the Rand arm.)"
    );
}
