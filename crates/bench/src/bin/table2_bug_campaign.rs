//! Table 2 reproduction: bug-finding campaign across the 18-dialect fleet.
//!
//! For every simulated dialect the harness runs an adaptive SQLancer++
//! campaign, prioritizes the bug-inducing test cases, resolves each kept
//! case to its ground-truth injected bug (the stand-in for the paper's
//! fix-commit analysis), and reports logic vs other bugs.

use bench::{experiment_campaign_config, run_campaign, GeneratorArm};
use dbms_sim::fleet;

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    println!("# Table 2 — bugs found per DBMS (reproduction)");
    println!();
    println!("| DBMS | detected cases | prioritized | unique bugs (ground truth) | logic | other | injected bugs |");
    println!("|---|---|---|---|---|---|---|");
    let mut total_unique = 0usize;
    let mut total_logic = 0usize;
    let mut total_other = 0usize;
    for preset in fleet() {
        let config = experiment_campaign_config(0xC0FFEE, queries, GeneratorArm::Adaptive);
        let outcome = run_campaign(&preset, config, GeneratorArm::Adaptive);
        total_unique += outcome.unique_bugs.len();
        total_logic += outcome.logic_bugs;
        total_other += outcome.other_bugs;
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            outcome.dialect,
            outcome.report.metrics.detected_bug_cases,
            outcome.report.metrics.prioritized_bugs,
            outcome.unique_bugs.len(),
            outcome.logic_bugs,
            outcome.other_bugs,
            preset.faults.len(),
        );
    }
    println!();
    println!(
        "Totals: {total_unique} unique bugs across the fleet ({total_logic} prioritized logic-bug cases, {total_other} other)."
    );
    println!();
    println!(
        "(Paper: 196 bugs across 18 DBMSs, 140 of them logic bugs. The reproduction's \
         shape to check: every dialect yields bugs, logic bugs dominate, and the unique \
         count per dialect scales with the number of injected bugs.)"
    );
}
