//! Shared experiment harness for the per-table / per-figure reproduction
//! binaries (see DESIGN.md §3 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dbms_sim::{DialectPreset, SimulatedDbms};
use sqlancer_core::{
    AdaptiveGenerator, Campaign, CampaignConfig, CampaignReport, DbmsConnection, Feature,
    GeneratorConfig, OracleKind,
};
use std::collections::BTreeSet;

/// Which generator arm an experiment runs (the paper's comparison axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorArm {
    /// SQLancer++ with validity feedback (the paper's default).
    Adaptive,
    /// SQLancer++ Rand: feedback disabled.
    Random,
    /// Perfect-knowledge baseline standing in for SQLancer's hand-written,
    /// DBMS-specific generators.
    PerfectKnowledge,
}

impl GeneratorArm {
    /// Display label used in the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            GeneratorArm::Adaptive => "SQLancer++",
            GeneratorArm::Random => "SQLancer++ Rand",
            GeneratorArm::PerfectKnowledge => "SQLancer (perfect knowledge)",
        }
    }
}

/// A campaign configuration scaled to finish in seconds rather than the
/// paper's wall-clock hours (DESIGN.md §1 substitution: campaigns are
/// bounded by test-case counts).
pub fn experiment_campaign_config(seed: u64, queries: usize, arm: GeneratorArm) -> CampaignConfig {
    let mut generator = match arm {
        GeneratorArm::Random => GeneratorConfig::random_baseline(),
        _ => GeneratorConfig::default(),
    };
    // Short runs cannot push the Beta posterior below the paper's 1%
    // threshold (that takes hundreds of observations per feature), so the
    // experiments use a 5% threshold with a smaller minimum sample — the
    // same trade-off a user of the platform makes for quick runs. A much
    // higher threshold would over-suppress features that merely correlate
    // with type errors, costing bug-finding ability.
    generator.stats.query_threshold = 0.05;
    generator.stats.min_attempts = 30;
    generator.stats.ddl_failure_limit = 4;
    generator.update_interval = 25;
    generator.depth_schedule_interval = 100;
    // Denser database states make logic bugs easier to observe (more rows,
    // more NULLs) without changing the algorithms under study.
    generator.max_insert_rows = 5;
    CampaignConfig::builder()
        .seed(seed)
        .generator(generator)
        .databases(2)
        .ddl_per_database(14)
        .queries_per_database(queries / 2)
        .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
        .reduce_bugs(true)
        .max_reduction_checks(24)
        .build()
}

/// Builds a campaign for the given arm against the given dialect preset.
pub fn campaign_for(preset: &DialectPreset, config: CampaignConfig, arm: GeneratorArm) -> Campaign {
    match arm {
        GeneratorArm::PerfectKnowledge => {
            let supported: BTreeSet<Feature> = preset
                .profile
                .supported_universe()
                .into_iter()
                .map(Feature::new)
                .collect();
            let generator =
                AdaptiveGenerator::with_knowledge(config.seed, config.generator.clone(), supported);
            Campaign::with_generator(config, generator)
        }
        _ => Campaign::new(config),
    }
}

/// The outcome of one experiment run against one dialect.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The dialect name.
    pub dialect: String,
    /// The campaign report.
    pub report: CampaignReport,
    /// Ground-truth unique bug ids triggered by the prioritized cases.
    pub unique_bugs: BTreeSet<&'static str>,
    /// Prioritized cases whose ground truth includes a logic bug.
    pub logic_bugs: usize,
    /// Prioritized cases classified as non-logic (crash / internal error)
    /// ground-truth bugs.
    pub other_bugs: usize,
    /// Engine coverage percentage reached by the campaign (Table 3 proxy for
    /// line coverage).
    pub coverage_pct: f64,
    /// Stricter per-category coverage percentage (Table 3 proxy for branch
    /// coverage).
    pub coverage_strict_pct: f64,
}

/// Runs one campaign against a fresh instance of the preset and resolves the
/// ground truth of every prioritized bug-inducing case.
pub fn run_campaign(
    preset: &DialectPreset,
    config: CampaignConfig,
    arm: GeneratorArm,
) -> RunOutcome {
    let mut campaign = campaign_for(preset, config, arm);
    let mut dbms: SimulatedDbms = preset.instantiate();
    let report = campaign.run(&mut dbms);
    let coverage = dbms.engine().coverage_snapshot();
    let universe = sql_engine::CoverageUniverse::engine_default();
    let coverage_pct = coverage.percentage(&universe);
    let coverage_strict_pct = coverage.strict_percentage(&universe);
    let mut unique_bugs = BTreeSet::new();
    let mut logic_bugs = 0usize;
    let mut other_bugs = 0usize;
    let catalog = dbms_sim::catalog();
    for case in &report.prioritized_cases {
        let causes = dbms.ground_truth_bugs(case);
        let mut any_logic = false;
        for cause in &causes {
            unique_bugs.insert(*cause);
            if catalog.iter().any(|b| b.id == *cause && b.is_logic) {
                any_logic = true;
            }
        }
        if causes.is_empty() {
            continue;
        }
        if any_logic {
            logic_bugs += 1;
        } else {
            other_bugs += 1;
        }
    }
    RunOutcome {
        dialect: dbms.name().to_string(),
        report,
        unique_bugs,
        logic_bugs,
        other_bugs,
        coverage_pct,
        coverage_strict_pct,
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbms_sim::preset_by_name;

    #[test]
    fn harness_runs_a_small_campaign_end_to_end() {
        let preset = preset_by_name("sqlite").unwrap();
        let config = experiment_campaign_config(1, 40, GeneratorArm::Adaptive);
        let outcome = run_campaign(&preset, config, GeneratorArm::Adaptive);
        assert_eq!(outcome.dialect, "sqlite");
        assert!(outcome.report.metrics.test_cases > 0);
    }

    #[test]
    fn perfect_knowledge_campaign_builds() {
        let preset = preset_by_name("cratedb").unwrap();
        let config = experiment_campaign_config(1, 20, GeneratorArm::PerfectKnowledge);
        let outcome = run_campaign(&preset, config, GeneratorArm::PerfectKnowledge);
        assert_eq!(outcome.dialect, "cratedb");
    }
}
