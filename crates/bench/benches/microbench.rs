//! Micro-benchmarks for the SQLancer++ core components: statement
//! generation throughput, Bayesian feedback updates, oracle checking against
//! a simulated dialect (text path vs AST fast path), and bug prioritization.
//!
//! The offline build has no `criterion`, so this is a self-contained harness
//! (`harness = false`): each benchmark warms up, then reports the mean
//! nanoseconds per iteration over a fixed wall-clock budget.

use dbms_sim::preset_by_name;
use sqlancer_core::{
    check_tlp, AdaptiveGenerator, BugPrioritizer, DbmsConnection, Feature, FeatureKind, FeatureSet,
    FeatureStats, GeneratorConfig, StatsConfig, TextOnlyConnection,
};
use std::time::{Duration, Instant};

/// Runs `f` repeatedly for ~200 ms after a short warm-up and prints the mean
/// time per iteration.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..10 {
        f();
    }
    let budget = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..16 {
            f();
        }
        iters += 16;
    }
    let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<40} {nanos:>12.0} ns/iter ({iters} iters)");
}

fn generator_with_schema() -> AdaptiveGenerator {
    let mut generator = AdaptiveGenerator::new(7, GeneratorConfig::default());
    for sql in [
        "CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, c1 TEXT, c2 BOOLEAN)",
        "CREATE TABLE t1 (c0 INTEGER, c3 INTEGER)",
    ] {
        generator.apply_success(&sql_parser::parse_statement(sql).unwrap());
    }
    generator
}

fn bench_generation() {
    let mut generator = generator_with_schema();
    bench("generation/generate_query", || {
        std::hint::black_box(generator.generate_query());
    });
    let mut generator = generator_with_schema();
    bench("generation/generate_ddl", || {
        std::hint::black_box(generator.generate_ddl_statement());
    });
}

fn bench_feedback() {
    let features: FeatureSet = ["OP_EQ", "FN_SIN", "JOIN_LEFT", "CLAUSE_WHERE"]
        .iter()
        .map(|n| Feature::new(*n))
        .collect();
    let mut stats = FeatureStats::new();
    let config = StatsConfig::default();
    bench("feedback/record_and_query_posterior", || {
        stats.record(&features, FeatureKind::Query, true);
        std::hint::black_box(stats.is_unsupported(
            &Feature::new("FN_SIN"),
            FeatureKind::Query,
            &config,
        ));
    });
}

fn bench_oracle() {
    let mut dbms = preset_by_name("sqlite").unwrap().instantiate();
    dbms.execute("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)");
    dbms.execute("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b'), (NULL, 'c')");
    let mut generator = generator_with_schema();
    let query = generator.generate_query().unwrap();
    bench("oracle/tlp_check_ast_path", || {
        std::hint::black_box(check_tlp(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        ));
    });
    let mut text_dbms = TextOnlyConnection::new(preset_by_name("sqlite").unwrap().instantiate());
    text_dbms.execute("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)");
    text_dbms.execute("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b'), (NULL, 'c')");
    bench("oracle/tlp_check_text_path", || {
        std::hint::black_box(check_tlp(
            &mut text_dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        ));
    });
}

fn bench_prioritizer() {
    let sets: Vec<FeatureSet> = (0..200)
        .map(|i| {
            [
                format!("F{}", i % 17),
                format!("G{}", i % 5),
                "OP_EQ".to_string(),
            ]
            .iter()
            .map(|n| Feature::new(n.clone()))
            .collect()
        })
        .collect();
    bench("prioritizer/classify_200_cases", || {
        let mut prioritizer = BugPrioritizer::new();
        for set in &sets {
            std::hint::black_box(prioritizer.classify(set));
        }
    });
}

fn main() {
    bench_generation();
    bench_feedback();
    bench_oracle();
    bench_prioritizer();
}
