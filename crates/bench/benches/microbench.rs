//! Criterion micro-benchmarks for the SQLancer++ core components:
//! statement generation throughput, Bayesian feedback updates, oracle
//! checking against a simulated dialect, and bug prioritization.

use criterion::{criterion_group, criterion_main, Criterion};
use dbms_sim::preset_by_name;
use sqlancer_core::{
    check_tlp, AdaptiveGenerator, BugPrioritizer, DbmsConnection, Feature, FeatureKind,
    FeatureSet, FeatureStats, GeneratorConfig, StatsConfig,
};

fn generator_with_schema() -> AdaptiveGenerator {
    let mut generator = AdaptiveGenerator::new(7, GeneratorConfig::default());
    for sql in [
        "CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, c1 TEXT, c2 BOOLEAN)",
        "CREATE TABLE t1 (c0 INTEGER, c3 INTEGER)",
    ] {
        generator.apply_success(&sql_parser::parse_statement(sql).unwrap());
    }
    generator
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(20);
    group.bench_function("generate_query", |b| {
        let mut generator = generator_with_schema();
        b.iter(|| std::hint::black_box(generator.generate_query()));
    });
    group.bench_function("generate_ddl", |b| {
        let mut generator = generator_with_schema();
        b.iter(|| std::hint::black_box(generator.generate_ddl_statement()));
    });
    group.finish();
}

fn bench_feedback(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback");
    group.sample_size(20);
    let features: FeatureSet = ["OP_EQ", "FN_SIN", "JOIN_LEFT", "CLAUSE_WHERE"]
        .iter()
        .map(|n| Feature::new(*n))
        .collect();
    group.bench_function("record_and_query_posterior", |b| {
        let mut stats = FeatureStats::new();
        let config = StatsConfig::default();
        b.iter(|| {
            stats.record(&features, FeatureKind::Query, true);
            std::hint::black_box(stats.is_unsupported(
                &Feature::new("FN_SIN"),
                FeatureKind::Query,
                &config,
            ))
        });
    });
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(20);
    group.bench_function("tlp_check_on_sqlite_dialect", |b| {
        let mut dbms = preset_by_name("sqlite").unwrap().instantiate();
        dbms.execute("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)");
        dbms.execute("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b'), (NULL, 'c')");
        let mut generator = generator_with_schema();
        let query = generator.generate_query().unwrap();
        b.iter(|| {
            std::hint::black_box(check_tlp(
                &mut dbms,
                &query.select,
                &query.predicate,
                &query.features,
                &[],
            ))
        });
    });
    group.finish();
}

fn bench_prioritizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("prioritizer");
    group.sample_size(20);
    let sets: Vec<FeatureSet> = (0..200)
        .map(|i| {
            [format!("F{}", i % 17), format!("G{}", i % 5), "OP_EQ".to_string()]
                .iter()
                .map(|n| Feature::new(n.clone()))
                .collect()
        })
        .collect();
    group.bench_function("classify_200_cases", |b| {
        b.iter(|| {
            let mut prioritizer = BugPrioritizer::new();
            for set in &sets {
                std::hint::black_box(prioritizer.classify(set));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_feedback,
    bench_oracle,
    bench_prioritizer
);
criterion_main!(benches);
