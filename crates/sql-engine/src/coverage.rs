//! Execution coverage accounting.
//!
//! The paper (Section 5.3, Table 3) compares line/branch coverage of the
//! C/C++ DBMSs under different generator configurations. The simulated
//! engine cannot be measured with `gcov`, so it records which of its own
//! *plan operators*, *scalar functions*, *binary/unary operators* and
//! *coercion paths* were exercised. The comparison the paper makes is
//! relative (feedback vs no feedback vs hand-written generator), which this
//! proxy preserves.

use std::collections::BTreeSet;
use std::sync::Arc;

/// Accumulates which engine facilities have been exercised.
///
/// The point sets live behind `Arc`s and detach copy-on-write: cloning a
/// tracker — which every `BEGIN` snapshot and engine clone does through
/// [`crate::Database`] — bumps five pointers, and a clone only copies a
/// set when it records a point the shared version lacks. On the campaign
/// hot path almost every statement hits already-recorded points, so
/// snapshots never copy coverage at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageTracker {
    /// Plan operators exercised (e.g. `seq_scan`, `index_lookup`,
    /// `hash_group_by`, `left_join`).
    pub plan_operators: Arc<BTreeSet<String>>,
    /// Scalar functions evaluated.
    pub functions: Arc<BTreeSet<String>>,
    /// Unary/binary operators evaluated.
    pub operators: Arc<BTreeSet<String>>,
    /// Coercion paths taken (e.g. `text->integer`).
    pub coercions: Arc<BTreeSet<String>>,
    /// Statement kinds executed.
    pub statements: Arc<BTreeSet<String>>,
}

/// The number of distinct coverage points in each category; used to turn a
/// [`CoverageTracker`] into a percentage comparable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageUniverse {
    /// Total distinct plan operators the engine can emit.
    pub plan_operators: usize,
    /// Total scalar functions implemented.
    pub functions: usize,
    /// Total operators implemented.
    pub operators: usize,
    /// Total coercion paths.
    pub coercions: usize,
    /// Total statement kinds.
    pub statements: usize,
}

impl CoverageUniverse {
    /// The universe for the engine as implemented in this crate.
    pub fn engine_default() -> CoverageUniverse {
        CoverageUniverse {
            plan_operators: 22,
            functions: sql_ast::ScalarFunction::ALL.len() + sql_ast::AggregateFunction::ALL.len(),
            operators: sql_ast::BinaryOp::ALL.len() + sql_ast::UnaryOp::ALL.len(),
            coercions: 10,
            statements: 11,
        }
    }

    /// Sum of all coverage points.
    pub fn total(&self) -> usize {
        self.plan_operators + self.functions + self.operators + self.coercions + self.statements
    }
}

impl CoverageTracker {
    /// Creates an empty tracker.
    pub fn new() -> CoverageTracker {
        CoverageTracker::default()
    }

    /// Inserts without allocating when the point was already recorded — the
    /// common case on the campaign hot path, where the same few coverage
    /// points are hit millions of times. A shared set is only detached
    /// (copied) when it actually gains a point.
    fn record(set: &mut Arc<BTreeSet<String>>, name: &str) {
        if !set.contains(name) {
            Arc::make_mut(set).insert(name.to_string());
        }
    }

    /// Records a plan operator.
    pub fn plan_operator(&mut self, name: &str) {
        Self::record(&mut self.plan_operators, name);
    }

    /// Records a scalar or aggregate function evaluation.
    pub fn function(&mut self, name: &str) {
        Self::record(&mut self.functions, name);
    }

    /// Records an operator evaluation.
    pub fn operator(&mut self, name: &str) {
        Self::record(&mut self.operators, name);
    }

    /// Records a coercion path.
    ///
    /// The dynamic-typing comparison path records a coercion per evaluated
    /// row, so the already-recorded case must not allocate; the set stays
    /// tiny (bounded by the handful of type-keyword pairs), making a linear
    /// pre-check cheaper than building the composite key.
    pub fn coercion(&mut self, from: &str, to: &str) {
        let exists = self
            .coercions
            .iter()
            .any(|c| c.strip_prefix(from).and_then(|r| r.strip_prefix("->")) == Some(to));
        if !exists {
            Arc::make_mut(&mut self.coercions).insert(format!("{from}->{to}"));
        }
    }

    /// Records a statement kind.
    pub fn statement(&mut self, name: &str) {
        Self::record(&mut self.statements, name);
    }

    /// Number of distinct coverage points hit.
    pub fn points(&self) -> usize {
        self.plan_operators.len()
            + self.functions.len()
            + self.operators.len()
            + self.coercions.len()
            + self.statements.len()
    }

    /// Coverage percentage relative to a universe (clamped to 100%).
    pub fn percentage(&self, universe: &CoverageUniverse) -> f64 {
        if universe.total() == 0 {
            return 0.0;
        }
        (self.points() as f64 / universe.total() as f64 * 100.0).min(100.0)
    }

    /// "Branch-style" coverage: the fraction of (plan operator, operator)
    /// categories where more than half of the universe was exercised. This
    /// second, stricter metric plays the role of branch coverage in Table 3.
    pub fn strict_percentage(&self, universe: &CoverageUniverse) -> f64 {
        let cats = [
            (self.plan_operators.len(), universe.plan_operators),
            (self.functions.len(), universe.functions),
            (self.operators.len(), universe.operators),
            (self.coercions.len(), universe.coercions),
            (self.statements.len(), universe.statements),
        ];
        let mut score = 0.0;
        for (hit, total) in cats {
            if total > 0 {
                score += (hit as f64 / total as f64).min(1.0);
            }
        }
        score / cats.len() as f64 * 100.0 * 0.8
    }

    /// Merges another tracker into this one. Sets that are literally the
    /// same shared version — the common case when a snapshot workspace
    /// recorded nothing new — or that bring no new points are skipped
    /// without copying.
    pub fn merge(&mut self, other: &CoverageTracker) {
        fn merge_set(into: &mut Arc<BTreeSet<String>>, from: &Arc<BTreeSet<String>>) {
            if Arc::ptr_eq(into, from) {
                return;
            }
            let fresh: Vec<&String> = from.iter().filter(|p| !into.contains(*p)).collect();
            if fresh.is_empty() {
                return;
            }
            Arc::make_mut(into).extend(fresh.into_iter().cloned());
        }
        merge_set(&mut self.plan_operators, &other.plan_operators);
        merge_set(&mut self.functions, &other.functions);
        merge_set(&mut self.operators, &other.operators);
        merge_set(&mut self.coercions, &other.coercions);
        merge_set(&mut self.statements, &other.statements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accumulates_distinct_points() {
        let mut c = CoverageTracker::new();
        c.plan_operator("seq_scan");
        c.plan_operator("seq_scan");
        c.function("SIN");
        c.operator("OP_ADD");
        c.coercion("text", "integer");
        c.statement("STMT_SELECT");
        assert_eq!(c.points(), 5);
    }

    #[test]
    fn percentage_is_bounded() {
        let mut c = CoverageTracker::new();
        let universe = CoverageUniverse::engine_default();
        assert_eq!(c.percentage(&universe), 0.0);
        for i in 0..1000 {
            c.function(&format!("f{i}"));
        }
        assert!(c.percentage(&universe) <= 100.0);
    }

    #[test]
    fn merge_unions_points() {
        let mut a = CoverageTracker::new();
        a.function("SIN");
        let mut b = CoverageTracker::new();
        b.function("COS");
        b.plan_operator("seq_scan");
        a.merge(&b);
        assert_eq!(a.points(), 3);
    }

    #[test]
    fn strict_percentage_below_plain_percentage_for_small_hits() {
        let mut c = CoverageTracker::new();
        c.function("SIN");
        let universe = CoverageUniverse::engine_default();
        assert!(c.strict_percentage(&universe) < c.percentage(&universe) + 1.0);
    }
}
