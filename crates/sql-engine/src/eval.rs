//! Expression evaluation with SQL three-valued logic, typing disciplines and
//! fault injection.

use crate::config::TypingMode;
use crate::error::{EngineError, EngineResult};
use crate::exec::{execute_select_in_scope, ExecutionMode};
use crate::functions::eval_function;
use crate::storage::Database;
use sql_ast::{BinaryOp, ColumnRef, DataType, Expr, TruthValue, UnaryOp, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A relation visible inside a query scope: its visible name (alias or table
/// name) and its output column names.
///
/// Column names are behind an [`Arc`] so that binding a base table to a
/// scope (which happens for every executed query) shares the schema's name
/// list instead of cloning one `String` per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationBinding {
    /// The name under which the relation's columns are addressable.
    pub name: String,
    /// Column names, in order.
    pub columns: Arc<Vec<String>>,
}

impl RelationBinding {
    /// Creates a binding.
    pub fn new(name: impl Into<String>, columns: impl Into<Arc<Vec<String>>>) -> RelationBinding {
        RelationBinding {
            name: name.into(),
            columns: columns.into(),
        }
    }
}

/// A lexical scope for column resolution: the relations of the current query
/// level, the current row's values (flattened across relations), and an
/// optional parent scope for correlated subqueries.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'a> {
    /// Relations visible at this level.
    pub relations: &'a [RelationBinding],
    /// The current row, flattened in relation order.
    pub row: &'a [Value],
    /// Enclosing scope, if evaluating inside a correlated subquery.
    pub parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// An empty scope (constant expressions only).
    pub const EMPTY: Scope<'static> = Scope {
        relations: &[],
        row: &[],
        parent: None,
    };

    /// Creates a scope with no parent.
    pub fn new(relations: &'a [RelationBinding], row: &'a [Value]) -> Scope<'a> {
        Scope {
            relations,
            row,
            parent: None,
        }
    }

    /// Resolves a column reference at this level only.
    fn resolve_local(&self, col: &ColumnRef) -> EngineResult<Option<Value>> {
        let mut offset = 0;
        let mut found: Option<Value> = None;
        for rel in self.relations {
            if let Some(table) = &col.table {
                if !rel.name.eq_ignore_ascii_case(table) {
                    offset += rel.columns.len();
                    continue;
                }
            }
            if let Some(i) = rel
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&col.column))
            {
                let value = self.row.get(offset + i).cloned().unwrap_or(Value::Null);
                if found.is_some() && col.table.is_none() {
                    return Err(EngineError::catalog(format!(
                        "ambiguous column reference '{}'",
                        col.column
                    )));
                }
                found = Some(value);
                if col.table.is_some() {
                    return Ok(found);
                }
            }
            offset += rel.columns.len();
        }
        Ok(found)
    }

    /// Resolves a column reference, walking outward through parent scopes.
    pub fn resolve(&self, col: &ColumnRef) -> EngineResult<Value> {
        if let Some(v) = self.resolve_local(col)? {
            return Ok(v);
        }
        if let Some(parent) = self.parent {
            return parent.resolve(col);
        }
        Err(EngineError::catalog(format!("no such column: {col}")))
    }

    /// Whether a column reference can be resolved in this scope chain.
    pub fn can_resolve(&self, col: &ColumnRef) -> bool {
        match self.resolve_local(col) {
            Ok(Some(_)) => true,
            Ok(None) | Err(_) => self.parent.map(|p| p.can_resolve(col)).unwrap_or(false),
        }
    }
}

/// Evaluates expressions against a [`Database`] in a given execution mode.
pub struct Evaluator<'a> {
    /// The database (needed for subqueries and fault flags).
    pub db: &'a Database,
    /// Whether the enclosing query runs on the optimized or reference path;
    /// several injected faults only fire on the optimized path.
    pub mode: ExecutionMode,
    /// Pre-computed aggregate values for the current group, keyed by the SQL
    /// rendering of the aggregate expression. `None` outside aggregation.
    pub aggregates: Option<&'a BTreeMap<String, Value>>,
    /// Whether the mixed→numeric comparison coercion has been recorded by
    /// this evaluator — the dynamic comparison path takes it once per row,
    /// so recording is short-circuited after the first.
    mixed_coercion_recorded: std::cell::Cell<bool>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator without aggregate context.
    pub fn new(db: &'a Database, mode: ExecutionMode) -> Evaluator<'a> {
        Evaluator::with_aggregates(db, mode, None)
    }

    /// Creates an evaluator with pre-computed aggregate values in scope.
    pub fn with_aggregates(
        db: &'a Database,
        mode: ExecutionMode,
        aggregates: Option<&'a BTreeMap<String, Value>>,
    ) -> Evaluator<'a> {
        Evaluator {
            db,
            mode,
            aggregates,
            mixed_coercion_recorded: std::cell::Cell::new(false),
        }
    }

    fn typing(&self) -> TypingMode {
        self.db.config.typing
    }

    fn optimized(&self) -> bool {
        self.mode == ExecutionMode::Optimized
    }

    /// Evaluates an expression to a value.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable columns, type errors under strict
    /// typing, or runtime errors (e.g. a scalar subquery with several rows).
    pub fn eval(&self, expr: &Expr, scope: &Scope<'_>) -> EngineResult<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => scope.resolve(c),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scope)?;
                self.db
                    .record_coverage(|cov| cov.operator(op.feature_name()));
                self.eval_unary(*op, v)
            }
            Expr::Binary { left, op, right } => {
                self.db
                    .record_coverage(|cov| cov.operator(op.feature_name()));
                self.eval_binary(left, *op, right, scope)
            }
            Expr::Function { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, scope)?);
                }
                self.db.record_coverage(|cov| cov.function(func.name()));
                eval_function(*func, &values, self.typing(), &self.db.config.faults)
            }
            Expr::Aggregate { .. } => {
                let key = expr.to_string();
                match self.aggregates.and_then(|m| m.get(&key)) {
                    Some(v) => Ok(v.clone()),
                    None => Err(EngineError::runtime(
                        "aggregate function used outside aggregation context",
                    )),
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => self.eval_case(operand.as_deref(), branches, else_expr.as_deref(), scope),
            Expr::Cast { expr, data_type } => {
                let v = self.eval(expr, scope)?;
                self.cast(v, *data_type)
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, scope)?;
                let lo = self.eval(low, scope)?;
                let hi = self.eval(high, scope)?;
                let ge = self.compare(&v, &lo)?.map(|o| o != Ordering::Less);
                let le = self.compare(&v, &hi)?.map(|o| o != Ordering::Greater);
                let t = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => TruthValue::False,
                    (Some(true), Some(true)) => TruthValue::True,
                    _ => TruthValue::Unknown,
                };
                Ok(if *negated { t.not() } else { t }.to_value())
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, scope)?;
                let mut saw_null = false;
                let mut matched = false;
                for item in list {
                    let iv = self.eval(item, scope)?;
                    match self.equals(&v, &iv)? {
                        TruthValue::True => {
                            matched = true;
                            break;
                        }
                        TruthValue::Unknown => saw_null = true,
                        TruthValue::False => {}
                    }
                }
                let t = if matched {
                    TruthValue::True
                } else if saw_null {
                    TruthValue::Unknown
                } else {
                    TruthValue::False
                };
                Ok(if *negated { t.not() } else { t }.to_value())
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let v = self.eval(expr, scope)?;
                let rs = execute_select_in_scope(self.db, subquery, self.mode, Some(scope))?;
                let mut saw_null = false;
                let mut matched = false;
                for row in &rs.rows {
                    let candidate = row.first().cloned().unwrap_or(Value::Null);
                    match self.equals(&v, &candidate)? {
                        TruthValue::True => {
                            matched = true;
                            break;
                        }
                        TruthValue::Unknown => saw_null = true,
                        TruthValue::False => {}
                    }
                }
                let t = if matched {
                    TruthValue::True
                } else if saw_null {
                    TruthValue::Unknown
                } else {
                    TruthValue::False
                };
                Ok(if *negated { t.not() } else { t }.to_value())
            }
            Expr::Exists { subquery, negated } => {
                let rs = execute_select_in_scope(self.db, subquery, self.mode, Some(scope))?;
                let exists = !rs.rows.is_empty();
                Ok(Value::Boolean(if *negated { !exists } else { exists }))
            }
            Expr::ScalarSubquery(subquery) => {
                let rs = execute_select_in_scope(self.db, subquery, self.mode, Some(scope))?;
                match rs.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rs.rows[0].first().cloned().unwrap_or(Value::Null)),
                    _ => Err(EngineError::runtime(
                        "scalar subquery returned more than one row",
                    )),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, scope)?;
                let is_null = v.is_null();
                Ok(Value::Boolean(if *negated { !is_null } else { is_null }))
            }
            Expr::IsBool {
                expr,
                target,
                negated,
            } => {
                let v = self.eval(expr, scope)?;
                let t = self.truthiness(&v)?;
                let matches = match t {
                    TruthValue::True => *target,
                    TruthValue::False => !*target,
                    TruthValue::Unknown => false,
                };
                Ok(Value::Boolean(if *negated { !matches } else { matches }))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, scope)?;
                let p = self.eval(pattern, scope)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let text = self.to_text(&v)?;
                let pat = self.to_text(&p)?;
                let underscore_is_literal =
                    self.optimized() && self.db.config.faults.bad_like_underscore;
                let matched = like_match(&text, &pat, underscore_is_literal);
                Ok(Value::Boolean(if *negated { !matched } else { matched }))
            }
        }
    }

    /// Evaluates an expression to a three-valued truth value, applying the
    /// typing discipline's rules for boolean contexts.
    ///
    /// # Errors
    ///
    /// Under strict typing, non-boolean values in a boolean context are type
    /// errors.
    pub fn eval_truth(&self, expr: &Expr, scope: &Scope<'_>) -> EngineResult<TruthValue> {
        let v = self.eval(expr, scope)?;
        self.truthiness(&v)
    }

    /// Truthiness of a value under the configured typing discipline.
    pub fn truthiness(&self, v: &Value) -> EngineResult<TruthValue> {
        match self.typing() {
            TypingMode::Dynamic => Ok(v.truthiness_dynamic()),
            TypingMode::Strict => v.truthiness_strict().ok_or_else(|| {
                EngineError::type_error(format!(
                    "argument of boolean context must be BOOLEAN, not {}",
                    v.data_type()
                ))
            }),
        }
    }

    fn eval_case(
        &self,
        operand: Option<&Expr>,
        branches: &[sql_ast::CaseBranch],
        else_expr: Option<&Expr>,
        scope: &Scope<'_>,
    ) -> EngineResult<Value> {
        match operand {
            Some(op) => {
                let base = self.eval(op, scope)?;
                for branch in branches {
                    let when = self.eval(&branch.when, scope)?;
                    if self.equals(&base, &when)? == TruthValue::True {
                        return self.eval(&branch.then, scope);
                    }
                }
            }
            None => {
                for branch in branches {
                    if self.eval_truth(&branch.when, scope)?.is_true() {
                        return self.eval(&branch.then, scope);
                    }
                }
            }
        }
        match else_expr {
            Some(e) => self.eval(e, scope),
            None => Ok(Value::Null),
        }
    }

    pub(crate) fn eval_unary(&self, op: UnaryOp, v: Value) -> EngineResult<Value> {
        match op {
            UnaryOp::Not => Ok(self.truthiness(&v)?.not().to_value()),
            UnaryOp::Neg | UnaryOp::Plus => {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let n = self.to_number(&v)?;
                let n = if op == UnaryOp::Neg { -n } else { n };
                Ok(number_value(
                    n,
                    matches!(v, Value::Integer(_) | Value::Boolean(_)),
                ))
            }
            UnaryOp::BitNot => {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let n = self.to_integer(&v)?;
                if self.db.config.faults.bad_bitwise_inversion && n < 0 {
                    // Injected fault (TiDB-style): negative operands are
                    // negated instead of bit-inverted.
                    return Ok(Value::Integer(-n));
                }
                Ok(Value::Integer(!n))
            }
        }
    }

    fn eval_binary(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        scope: &Scope<'_>,
    ) -> EngineResult<Value> {
        // Logical connectives need lazy-ish three-valued handling.
        if op == BinaryOp::And || op == BinaryOp::Or {
            let lt = self.eval_truth(left, scope)?;
            let rt = self.eval_truth(right, scope)?;
            let t = if op == BinaryOp::And {
                lt.and(rt)
            } else {
                lt.or(rt)
            };
            return Ok(t.to_value());
        }
        let lv = self.eval(left, scope)?;
        let rv = self.eval(right, scope)?;
        self.apply_binary(op, &lv, &rv)
    }

    /// Applies a binary operator to two already-evaluated values.
    pub fn apply_binary(&self, op: BinaryOp, lv: &Value, rv: &Value) -> EngineResult<Value> {
        use BinaryOp::*;
        match op {
            And => Ok(self.truthiness(lv)?.and(self.truthiness(rv)?).to_value()),
            Or => Ok(self.truthiness(lv)?.or(self.truthiness(rv)?).to_value()),
            Add | Sub | Mul | Div | Mod => self.arithmetic(op, lv, rv),
            Eq => Ok(self.equals(lv, rv)?.to_value()),
            Neq | NeqLtGt => Ok(self.equals(lv, rv)?.not().to_value()),
            Lt | Le | Gt | Ge => {
                let cmp = self.compare(lv, rv)?;
                let t = match cmp {
                    None => TruthValue::Unknown,
                    Some(ord) => TruthValue::from_bool(match op {
                        Lt => ord == Ordering::Less,
                        Le => ord != Ordering::Greater,
                        Gt => ord == Ordering::Greater,
                        Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                };
                Ok(t.to_value())
            }
            NullSafeEq => Ok(Value::Boolean(self.null_safe_equal(lv, rv)?)),
            IsDistinctFrom => Ok(Value::Boolean(!self.null_safe_equal(lv, rv)?)),
            IsNotDistinctFrom => Ok(Value::Boolean(self.null_safe_equal(lv, rv)?)),
            BitAnd | BitOr | BitXor | ShiftLeft | ShiftRight => {
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let a = self.to_integer(lv)?;
                let b = self.to_integer(rv)?;
                let out = match op {
                    BitAnd => a & b,
                    BitOr => a | b,
                    BitXor => a ^ b,
                    ShiftLeft => a.wrapping_shl((b.rem_euclid(64)) as u32),
                    ShiftRight => a.wrapping_shr((b.rem_euclid(64)) as u32),
                    _ => unreachable!(),
                };
                Ok(Value::Integer(out))
            }
            Concat => {
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let a = self.to_text(lv)?;
                let b = self.to_text(rv)?;
                Ok(Value::Text(format!("{a}{b}")))
            }
        }
    }

    fn arithmetic(&self, op: BinaryOp, lv: &Value, rv: &Value) -> EngineResult<Value> {
        if lv.is_null() || rv.is_null() {
            return Ok(Value::Null);
        }
        let a = self.to_number(lv)?;
        let b = self.to_number(rv)?;
        let both_integral = matches!(lv, Value::Integer(_) | Value::Boolean(_))
            && matches!(rv, Value::Integer(_) | Value::Boolean(_));
        let result = match op {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return self.division_by_zero();
                }
                if both_integral {
                    let ai = a as i64;
                    let bi = b as i64;
                    if self.optimized() && self.db.config.faults.bad_integer_division {
                        // Injected fault: rounds to nearest instead of
                        // truncating toward zero.
                        return Ok(Value::Integer((a / b).round() as i64));
                    }
                    return Ok(Value::Integer(ai.wrapping_div(bi)));
                }
                a / b
            }
            BinaryOp::Mod => {
                if b == 0.0 {
                    return self.division_by_zero();
                }
                if both_integral {
                    return Ok(Value::Integer((a as i64).wrapping_rem(b as i64)));
                }
                a % b
            }
            _ => unreachable!(),
        };
        Ok(number_value(result, both_integral))
    }

    fn division_by_zero(&self) -> EngineResult<Value> {
        match self.typing() {
            TypingMode::Dynamic => Ok(Value::Null),
            TypingMode::Strict => Err(EngineError::runtime("division by zero")),
        }
    }

    /// SQL equality under the configured typing discipline.
    pub fn equals(&self, lv: &Value, rv: &Value) -> EngineResult<TruthValue> {
        Ok(match self.compare(lv, rv)? {
            None => TruthValue::Unknown,
            Some(ord) => TruthValue::from_bool(ord == Ordering::Equal),
        })
    }

    fn null_safe_equal(&self, lv: &Value, rv: &Value) -> EngineResult<bool> {
        if lv.is_null() && rv.is_null() {
            return Ok(true);
        }
        if lv.is_null() || rv.is_null() {
            return Ok(false);
        }
        Ok(self.compare(lv, rv)? == Some(Ordering::Equal))
    }

    /// SQL comparison: `None` means the comparison is unknown (`NULL`).
    ///
    /// # Errors
    ///
    /// Under strict typing, comparing incompatible type families is an
    /// error.
    pub fn compare(&self, lv: &Value, rv: &Value) -> EngineResult<Option<Ordering>> {
        if lv.is_null() || rv.is_null() {
            return Ok(None);
        }
        let faults = &self.db.config.faults;
        match self.typing() {
            TypingMode::Strict => {
                let compatible = families_compatible(lv, rv);
                if !compatible {
                    return Err(EngineError::type_error(format!(
                        "cannot compare {} with {}",
                        lv.data_type(),
                        rv.data_type()
                    )));
                }
                Ok(Some(self.ordered_compare(lv, rv, faults)))
            }
            TypingMode::Dynamic => {
                // Dynamic comparison: if either side is numeric, coerce both
                // to numbers; otherwise compare as text.
                if lv.data_type().is_numeric()
                    || rv.data_type().is_numeric()
                    || matches!(lv, Value::Boolean(_))
                    || matches!(rv, Value::Boolean(_))
                {
                    let a = self.coerce_number_for_comparison(lv);
                    let b = self.coerce_number_for_comparison(rv);
                    if !self.mixed_coercion_recorded.get() {
                        self.mixed_coercion_recorded.set(true);
                        self.db
                            .record_coverage(|cov| cov.coercion("mixed", "numeric"));
                    }
                    return Ok(a.partial_cmp(&b).or(Some(Ordering::Equal)));
                }
                Ok(Some(self.ordered_compare(lv, rv, faults)))
            }
        }
    }

    fn ordered_compare(
        &self,
        lv: &Value,
        rv: &Value,
        faults: &crate::faults::FaultConfig,
    ) -> Ordering {
        if let (Value::Text(a), Value::Text(b)) = (lv, rv) {
            if self.optimized() && faults.bad_collation_comparison {
                // Injected fault: case-insensitive comparison on the
                // optimized path only.
                return a.to_lowercase().cmp(&b.to_lowercase());
            }
            return a.cmp(b);
        }
        lv.total_cmp(rv)
    }

    fn coerce_number_for_comparison(&self, v: &Value) -> f64 {
        if let Value::Text(s) = v {
            if self.optimized() && self.db.config.faults.bad_text_coercion_sign {
                // Injected fault: the optimized coercion path drops a
                // leading minus sign.
                return sql_ast::parse_numeric_prefix(s.trim_start_matches('-'));
            }
        }
        v.coerce_f64().unwrap_or(0.0)
    }

    /// Converts a value to a number according to the typing discipline.
    ///
    /// # Errors
    ///
    /// Under strict typing, text and boolean operands of arithmetic are type
    /// errors.
    pub fn to_number(&self, v: &Value) -> EngineResult<f64> {
        match self.typing() {
            TypingMode::Dynamic => Ok(v.coerce_f64().unwrap_or(0.0)),
            TypingMode::Strict => v
                .as_f64_strict()
                .filter(|_| !matches!(v, Value::Boolean(_)))
                .ok_or_else(|| {
                    EngineError::type_error(format!(
                        "expected a numeric value, got {}",
                        v.data_type()
                    ))
                }),
        }
    }

    /// Converts a value to an integer according to the typing discipline.
    ///
    /// # Errors
    ///
    /// Under strict typing, non-integer operands are type errors.
    pub fn to_integer(&self, v: &Value) -> EngineResult<i64> {
        match self.typing() {
            TypingMode::Dynamic => Ok(v.coerce_i64().unwrap_or(0)),
            TypingMode::Strict => match v {
                Value::Integer(i) => Ok(*i),
                _ => Err(EngineError::type_error(format!(
                    "expected INTEGER, got {}",
                    v.data_type()
                ))),
            },
        }
    }

    /// Converts a value to text according to the typing discipline.
    ///
    /// # Errors
    ///
    /// Under strict typing, non-text operands are type errors.
    pub fn to_text(&self, v: &Value) -> EngineResult<String> {
        match self.typing() {
            TypingMode::Dynamic => Ok(v.coerce_text().unwrap_or_default()),
            TypingMode::Strict => match v {
                Value::Text(s) => Ok(s.clone()),
                _ => Err(EngineError::type_error(format!(
                    "expected TEXT, got {}",
                    v.data_type()
                ))),
            },
        }
    }

    /// Applies an explicit `CAST`.
    ///
    /// # Errors
    ///
    /// Under strict typing, casting text that does not fully parse to a
    /// number is an error.
    pub fn cast(&self, v: Value, target: DataType) -> EngineResult<Value> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        self.db
            .record_coverage(|cov| cov.coercion(v.data_type().sql_keyword(), target.sql_keyword()));
        match target {
            DataType::Integer => match (&v, self.typing()) {
                (Value::Text(s), TypingMode::Strict) => {
                    s.trim().parse::<i64>().map(Value::Integer).map_err(|_| {
                        EngineError::type_error(format!("invalid input for INTEGER: '{s}'"))
                    })
                }
                _ => Ok(Value::Integer(v.coerce_i64().unwrap_or(0))),
            },
            DataType::Real => match (&v, self.typing()) {
                (Value::Text(s), TypingMode::Strict) => {
                    s.trim().parse::<f64>().map(Value::Real).map_err(|_| {
                        EngineError::type_error(format!("invalid input for REAL: '{s}'"))
                    })
                }
                _ => Ok(Value::Real(v.coerce_f64().unwrap_or(0.0))),
            },
            DataType::Text => Ok(Value::Text(v.coerce_text().unwrap_or_default())),
            DataType::Boolean => match (&v, self.typing()) {
                (Value::Text(s), TypingMode::Strict) => {
                    match s.trim().to_ascii_lowercase().as_str() {
                        "true" | "t" | "1" => Ok(Value::Boolean(true)),
                        "false" | "f" | "0" => Ok(Value::Boolean(false)),
                        _ => Err(EngineError::type_error(format!(
                            "invalid input for BOOLEAN: '{s}'"
                        ))),
                    }
                }
                _ => Ok(v.truthiness_dynamic().to_value()),
            },
            DataType::Null => Ok(Value::Null),
        }
    }
}

/// Whether two values belong to comparable type families under strict
/// typing.
fn families_compatible(a: &Value, b: &Value) -> bool {
    use Value::*;
    matches!(
        (a, b),
        (Integer(_) | Real(_), Integer(_) | Real(_))
            | (Text(_), Text(_))
            | (Boolean(_), Boolean(_))
    )
}

/// Wraps an `f64` back into an integer value when the computation stayed
/// integral, otherwise into a real.
fn number_value(n: f64, integral: bool) -> Value {
    if integral && n.fract() == 0.0 && n.abs() < 9.0e18 {
        Value::Integer(n as i64)
    } else {
        Value::Real(n)
    }
}

/// SQL `LIKE` matching with `%` and `_` wildcards.
pub(crate) fn like_match(text: &str, pattern: &str, underscore_is_literal: bool) -> bool {
    fn rec(t: &[char], p: &[char], underscore_literal: bool) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            '%' => {
                for skip in 0..=t.len() {
                    if rec(&t[skip..], &p[1..], underscore_literal) {
                        return true;
                    }
                }
                false
            }
            '_' if !underscore_literal => {
                !t.is_empty() && rec(&t[1..], &p[1..], underscore_literal)
            }
            c => !t.is_empty() && t[0] == c && rec(&t[1..], &p[1..], underscore_literal),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p, underscore_is_literal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;

    fn db_dynamic() -> Database {
        Database::new(EngineConfig::dynamic())
    }

    fn db_strict() -> Database {
        Database::new(EngineConfig::strict())
    }

    fn eval_const(db: &Database, sql: &str) -> EngineResult<Value> {
        let expr = sql_parser::parse_expression(sql).unwrap();
        Evaluator::new(db, ExecutionMode::Reference).eval(&expr, &Scope::EMPTY)
    }

    #[test]
    fn arithmetic_and_null_propagation() {
        let db = db_dynamic();
        assert_eq!(eval_const(&db, "1 + 2").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(&db, "7 / 2").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(&db, "7.0 / 2").unwrap(), Value::Real(3.5));
        assert_eq!(eval_const(&db, "1 + NULL").unwrap(), Value::Null);
        assert_eq!(eval_const(&db, "5 % 3").unwrap(), Value::Integer(2));
    }

    #[test]
    fn division_by_zero_differs_by_typing() {
        assert_eq!(eval_const(&db_dynamic(), "1 / 0").unwrap(), Value::Null);
        assert!(eval_const(&db_strict(), "1 / 0").is_err());
    }

    #[test]
    fn dynamic_coerces_text_in_comparison_strict_rejects() {
        let dynamic = db_dynamic();
        assert_eq!(
            eval_const(&dynamic, "'12' = 12").unwrap(),
            Value::Boolean(true)
        );
        assert!(eval_const(&db_strict(), "'12' = 12").is_err());
    }

    #[test]
    fn strict_rejects_arithmetic_on_text() {
        assert!(eval_const(&db_strict(), "'a' + 1").is_err());
        // Dynamic typing coerces the text to 0 and keeps the result numeric.
        assert_eq!(
            eval_const(&db_dynamic(), "'a' + 1").unwrap().coerce_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn three_valued_connectives() {
        let db = db_dynamic();
        assert_eq!(
            eval_const(&db, "NULL AND FALSE").unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(eval_const(&db, "NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(
            eval_const(&db, "NULL OR TRUE").unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(eval_const(&db, "NOT NULL").unwrap(), Value::Null);
    }

    #[test]
    fn null_safe_operators() {
        let db = db_dynamic();
        assert_eq!(
            eval_const(&db, "NULL <=> NULL").unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_const(&db, "1 <=> NULL").unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            eval_const(&db, "NULL IS DISTINCT FROM NULL").unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(eval_const(&db, "NULL = NULL").unwrap(), Value::Null);
    }

    #[test]
    fn case_between_in_like() {
        let db = db_dynamic();
        assert_eq!(
            eval_const(&db, "CASE WHEN 1 THEN 2 ELSE 3 END").unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            eval_const(&db, "CASE 5 WHEN 4 THEN 1 WHEN 5 THEN 2 END").unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            eval_const(&db, "5 BETWEEN 1 AND 10").unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_const(&db, "5 NOT IN (1, 2, 3)").unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(eval_const(&db, "5 IN (1, NULL, 3)").unwrap(), Value::Null);
        assert_eq!(
            eval_const(&db, "'abc' LIKE 'a%'").unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_const(&db, "'abc' LIKE 'a_c'").unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn cast_behaviour_by_mode() {
        let dynamic = db_dynamic();
        assert_eq!(
            eval_const(&dynamic, "CAST('12abc' AS INTEGER)").unwrap(),
            Value::Integer(12)
        );
        let strict = db_strict();
        assert!(eval_const(&strict, "CAST('12abc' AS INTEGER)").is_err());
        assert_eq!(
            eval_const(&strict, "CAST('12' AS INTEGER)").unwrap(),
            Value::Integer(12)
        );
        assert_eq!(
            eval_const(&strict, "CAST(1 AS BOOLEAN)").unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn bitwise_inversion_fault_changes_negative_inputs_only() {
        let mut cfg = EngineConfig::dynamic();
        cfg.faults.bad_bitwise_inversion = true;
        let buggy = Database::new(cfg);
        let sound = db_dynamic();
        assert_eq!(
            eval_const(&sound, "~5").unwrap(),
            eval_const(&buggy, "~5").unwrap()
        );
        assert_ne!(
            eval_const(&sound, "~(-5)").unwrap(),
            eval_const(&buggy, "~(-5)").unwrap()
        );
    }

    #[test]
    fn scope_resolution_and_ambiguity() {
        let relations = vec![
            RelationBinding::new("t0", vec!["c0".into(), "c1".into()]),
            RelationBinding::new("t1", vec!["c0".into()]),
        ];
        let row = vec![Value::Integer(1), Value::Integer(2), Value::Integer(3)];
        let scope = Scope::new(&relations, &row);
        assert_eq!(
            scope.resolve(&ColumnRef::qualified("t1", "c0")).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            scope.resolve(&ColumnRef::unqualified("c1")).unwrap(),
            Value::Integer(2)
        );
        assert!(scope.resolve(&ColumnRef::unqualified("c0")).is_err());
        assert!(scope.resolve(&ColumnRef::unqualified("missing")).is_err());
    }

    #[test]
    fn like_matcher_corner_cases() {
        assert!(like_match("", "%", false));
        assert!(like_match("abc", "%c", false));
        assert!(!like_match("abc", "_", false));
        // Literal-underscore fault: 'a_c' matches only itself.
        assert!(like_match("a_c", "a_c", true));
        assert!(!like_match("abc", "a_c", true));
    }
}
