//! # sql-engine
//!
//! A complete in-memory relational engine built for the SQLancer++
//! reproduction ("Scaling Automated Database System Testing", ASPLOS 2026).
//!
//! The paper evaluates its testing platform against 18 third-party DBMSs;
//! this crate is the substrate that stands in for them: it parses SQL text
//! (via `sql-parser`), maintains a catalog, stores rows, evaluates
//! expressions under either a dynamic (SQLite-like) or strict
//! (PostgreSQL-like) typing discipline, and executes queries through two
//! paths:
//!
//! * an **optimizing** path (expression rewrites, predicate handling, index
//!   access paths), and
//! * a **non-optimizing reference** path that executes the query exactly as
//!   written.
//!
//! On both paths, expressions are evaluated by a **closure-compiled**
//! evaluator by default ([`compile_expr`]; plans are cached per
//! [`Database`]), with the tree-walking [`Evaluator`] kept as the
//! observationally-identical reference arm ([`EvalStrategy::TreeWalk`]).
//!
//! The engine is transactional: `BEGIN [DEFERRED | IMMEDIATE]`/`COMMIT`/
//! `ROLLBACK`/`SAVEPOINT`/`ROLLBACK TO`/`RELEASE SAVEPOINT` run against a
//! per-table undo log (see the `txn` module), giving explicit transactions
//! snapshot semantics over the in-memory storage while autocommit remains
//! the default. The `session` module layers **concurrent sessions** on
//! top: [`Engine`] is a shared storage core, [`Engine::session`] hands out
//! per-connection handles with begin-time snapshot reads and
//! first-committer-wins conflict detection (`COMMIT` can fail with a
//! serialization error).
//!
//! Logic bugs can be *injected* via [`FaultConfig`]: each switch enables one
//! wrong rewrite, access-path shortcut, or evaluation quirk, several of them
//! modeled on real bugs discussed in the paper. The `dbms-sim` crate layers
//! dialect feature-gating and bug ground truth on top of this engine to
//! build the simulated DBMS fleet that SQLancer++ is evaluated against.
//!
//! # Examples
//!
//! ```
//! use sql_engine::{Database, EngineConfig};
//!
//! let mut db = Database::new(EngineConfig::dynamic());
//! db.execute_sql("CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, c1 TEXT)").unwrap();
//! db.execute_sql("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b')").unwrap();
//! let rs = db.query_sql("SELECT c1 FROM t0 WHERE c0 = 2").unwrap();
//! assert_eq!(rs.rows, vec![vec![sql_ast::Value::text("b")]]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod compile;
mod config;
mod coverage;
mod error;
mod eval;
mod exec;
mod faults;
mod functions;
mod optimizer;
mod session;
mod storage;
mod txn;

pub use catalog::{Catalog, Column, IndexDef, TableSchema, ViewDef};
pub use compile::{compile_expr, CompiledExpr, SiteExpr};
pub use config::{EngineConfig, EvalStrategy, TypingMode};
pub use coverage::{CoverageTracker, CoverageUniverse};
pub use error::{EngineError, EngineResult, ErrorKind};
pub use eval::{Evaluator, RelationBinding, Scope};
pub use exec::{
    execute_select, execute_select_in_scope, execute_statement, ExecutionMode, StatementResult,
};
pub use faults::FaultConfig;
pub use functions::{eval_function, eval_function_unchecked};
pub use optimizer::{optimize_select, rewrite_predicate};
pub use session::{CowStats, Engine, EngineSession, SERIALIZATION_FAILURE};
pub use storage::{ColumnStats, Database, ResultSet, Row, TableStats};
