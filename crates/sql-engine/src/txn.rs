//! Snapshot-isolated transactions over the in-memory storage.
//!
//! The engine executes in autocommit by default; `BEGIN` opens an explicit
//! transaction that buffers undo information until `COMMIT` discards it or
//! `ROLLBACK` applies it. The design is a classic **per-table undo log**
//! layered as a stack of frames:
//!
//! * `BEGIN` pushes the bottom frame; `SAVEPOINT <name>` pushes another
//!   frame on top of it.
//! * Each frame snapshots the catalog eagerly (it is small — a handful of
//!   table/view/index definitions) and captures row/statistics **pre-images
//!   lazily**: the first time a table is mutated under a frame, that
//!   frame records the table's rows and stats as of frame open
//!   ([`Database::txn_touch`], called from every storage mutation point).
//!   Tables the transaction never touches are never copied.
//! * `ROLLBACK TO <name>` pops frames above the savepoint (applying their
//!   undo), then applies and clears the savepoint frame's own undo — the
//!   savepoint survives, exactly like SQL says.
//! * `ROLLBACK` applies every frame's undo top-to-bottom and restores the
//!   bottom frame's catalog; `COMMIT` simply drops the stack.
//!
//! All three execution tiers observe identical transactional behaviour for
//! free: the text path parses to the same [`sql_ast::Statement`] variants
//! the AST fast path receives, and the compiled-expression tier only caches
//! plans keyed by structure — rolling row data back never invalidates a
//! plan.
//!
//! Three injected transaction faults live here (see [`crate::faults`]):
//! `txn_lost_rollback` (ROLLBACK keeps the writes), `txn_phantom_commit`
//! (COMMIT discards them) and `txn_savepoint_collapse` (ROLLBACK TO rewinds
//! to transaction start). They are the ground truth the rollback oracle is
//! measured against.

use crate::catalog::{lowercase_key, Catalog};
use crate::error::{EngineError, EngineResult};
use crate::storage::{Database, Row, TableStats};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pre-image of one table at the moment a frame first touched it. With
/// copy-on-write storage this is a pair of shared version pointers: taking
/// a pre-image bumps two refcounts, and applying undo swaps the pointers
/// back — row data is never copied by the undo log itself.
#[derive(Debug, Clone)]
struct TableImage {
    rows: Arc<Vec<Row>>,
    stats: Option<Arc<TableStats>>,
}

/// One transaction frame: the `BEGIN` frame or a savepoint frame.
#[derive(Debug, Clone)]
struct TxnFrame {
    /// `None` for the `BEGIN` frame, the (lowercased) savepoint name
    /// otherwise.
    savepoint: Option<String>,
    /// Catalog as of frame open (restored on rollback; DDL is rare inside
    /// transactions, so an eager snapshot of the small catalog beats
    /// per-object undo bookkeeping).
    catalog: Catalog,
    /// Lazily captured per-table pre-images, keyed by lowercased table
    /// name. `None` means the table had no storage at frame open (it was
    /// created inside the frame and must be dropped on rollback).
    undo: BTreeMap<String, Option<TableImage>>,
}

impl TxnFrame {
    fn open(catalog: &Catalog, savepoint: Option<String>) -> TxnFrame {
        TxnFrame {
            savepoint,
            catalog: catalog.clone(),
            undo: BTreeMap::new(),
        }
    }
}

/// The transaction state of a [`Database`]: empty in autocommit, one frame
/// per `BEGIN`/`SAVEPOINT` otherwise.
#[derive(Debug, Clone, Default)]
pub(crate) struct TxnStack {
    frames: Vec<TxnFrame>,
}

impl Database {
    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        !self.txn.frames.is_empty()
    }

    /// Depth of the savepoint stack (0 outside a transaction, 1 right after
    /// `BEGIN`, +1 per active savepoint). Exposed for tests and tooling.
    pub fn transaction_depth(&self) -> usize {
        self.txn.frames.len()
    }

    /// `BEGIN`.
    ///
    /// # Errors
    ///
    /// Fails when a transaction is already open (no nested transactions).
    pub(crate) fn txn_begin(&mut self) -> EngineResult<()> {
        if self.in_transaction() {
            return Err(EngineError::runtime(
                "cannot start a transaction within a transaction",
            ));
        }
        self.txn.frames.push(TxnFrame::open(&self.catalog, None));
        Ok(())
    }

    /// `COMMIT`. A no-op outside a transaction — autocommit-off dialects
    /// send `COMMIT` after every DML statement and expect it to succeed.
    pub(crate) fn txn_commit(&mut self) -> EngineResult<()> {
        if !self.in_transaction() {
            return Ok(());
        }
        if self.config.faults.txn_phantom_commit {
            // Injected fault: the commit path runs the abort path's undo
            // application, so the transaction's writes silently vanish.
            self.apply_undo_all();
        }
        self.txn.frames.clear();
        Ok(())
    }

    /// `ROLLBACK`.
    ///
    /// # Errors
    ///
    /// Fails when no transaction is open.
    pub(crate) fn txn_rollback(&mut self) -> EngineResult<()> {
        if !self.in_transaction() {
            return Err(EngineError::runtime("no transaction is active"));
        }
        if !self.config.faults.txn_lost_rollback {
            self.apply_undo_all();
        }
        // Injected fault txn_lost_rollback: the undo log is discarded
        // without being applied, so the writes stay — a silent commit.
        self.txn.frames.clear();
        Ok(())
    }

    /// `SAVEPOINT <name>`.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction.
    pub(crate) fn txn_savepoint(&mut self, name: &str) -> EngineResult<()> {
        if !self.in_transaction() {
            return Err(EngineError::runtime(
                "SAVEPOINT can only be used inside a transaction",
            ));
        }
        let key = lowercase_key(name).into_owned();
        self.txn
            .frames
            .push(TxnFrame::open(&self.catalog, Some(key)));
        Ok(())
    }

    /// `ROLLBACK TO <name>`.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction or for an unknown savepoint name.
    pub(crate) fn txn_rollback_to(&mut self, name: &str) -> EngineResult<()> {
        if !self.in_transaction() {
            return Err(EngineError::runtime("no transaction is active"));
        }
        let key = lowercase_key(name).into_owned();
        let Some(target) = self
            .txn
            .frames
            .iter()
            .rposition(|f| f.savepoint.as_deref() == Some(key.as_str()))
        else {
            return Err(EngineError::runtime(format!("no such savepoint: {name}")));
        };
        if self.config.faults.txn_savepoint_collapse {
            // Injected fault: the savepoint stack is collapsed and the
            // whole transaction is rewound to its start; the transaction
            // stays open but every savepoint (including the target) is
            // gone.
            self.apply_undo_down_to(0);
            let bottom = &mut self.txn.frames[0];
            bottom.undo.clear();
            self.txn.frames.truncate(1);
            return Ok(());
        }
        // Pop and undo the frames strictly above the savepoint, then rewind
        // the savepoint frame itself — but keep it: the savepoint remains
        // valid for another ROLLBACK TO.
        self.apply_undo_down_to(target);
        let frame = &mut self.txn.frames[target];
        frame.undo.clear();
        let catalog = frame.catalog.clone();
        self.catalog = catalog;
        self.txn.frames.truncate(target + 1);
        Ok(())
    }

    /// `RELEASE SAVEPOINT <name>`.
    ///
    /// Removes the named savepoint and every later one while **keeping** the
    /// changes made since: the released frames' undo logs are merged
    /// downward into the frame below the savepoint. For each table, the
    /// receiving frame keeps its own (older) pre-image when it has one;
    /// otherwise it adopts the pre-image from the *lowest* released frame
    /// that recorded the table — which is exactly the table's state as of
    /// the receiving frame's span, because any earlier mutation would have
    /// been recorded by the receiving frame itself.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction or for an unknown savepoint name.
    pub(crate) fn txn_release(&mut self, name: &str) -> EngineResult<()> {
        if !self.in_transaction() {
            return Err(EngineError::runtime("no transaction is active"));
        }
        let key = lowercase_key(name).into_owned();
        let Some(target) = self
            .txn
            .frames
            .iter()
            .rposition(|f| f.savepoint.as_deref() == Some(key.as_str()))
        else {
            return Err(EngineError::runtime(format!("no such savepoint: {name}")));
        };
        // Savepoint frames always sit above the `BEGIN` frame, so a
        // receiving frame exists.
        let released: Vec<TxnFrame> = self.txn.frames.split_off(target);
        let receiver = self
            .txn
            .frames
            .last_mut()
            .expect("BEGIN frame below every savepoint");
        // Bottom-up: the lowest released frame holds the oldest pre-images.
        for frame in released {
            for (table, image) in frame.undo {
                receiver.undo.entry(table).or_insert(image);
            }
        }
        Ok(())
    }

    /// Applies every frame's undo (newest first) and restores the bottom
    /// frame's catalog. Leaves the frame stack untouched.
    fn apply_undo_all(&mut self) {
        self.apply_undo_down_to(0);
        if let Some(bottom) = self.txn.frames.first() {
            self.catalog = bottom.catalog.clone();
        }
    }

    /// Applies the undo of every frame with index >= `floor`, newest first.
    /// Older frames hold older pre-images, so applying top-down converges on
    /// the state as of frame `floor`'s open.
    fn apply_undo_down_to(&mut self, floor: usize) {
        for i in (floor..self.txn.frames.len()).rev() {
            let undo = std::mem::take(&mut self.txn.frames[i].undo);
            for (table, image) in undo {
                match image {
                    Some(image) => {
                        self.data.insert(table.clone(), image.rows);
                        match image.stats {
                            Some(stats) => {
                                self.stats.insert(table, stats);
                            }
                            None => {
                                self.stats.remove(&table);
                            }
                        }
                    }
                    None => {
                        // The table did not exist at frame open.
                        self.data.remove(&table);
                        self.stats.remove(&table);
                    }
                }
            }
        }
    }

    /// Records the pre-image of a table in the innermost frame before a
    /// mutation, unless that frame already holds one. Called by every
    /// storage mutation point ([`Database::rows_mut`],
    /// `create_storage`/`drop_storage`, `set_stats`); a no-op in
    /// autocommit.
    pub(crate) fn txn_touch(&mut self, name: &str) {
        let Some(frame) = self.txn.frames.last_mut() else {
            return;
        };
        let key = lowercase_key(name);
        if frame.undo.contains_key(key.as_ref()) {
            return;
        }
        let image = self.data.get(key.as_ref()).map(|rows| TableImage {
            rows: Arc::clone(rows),
            stats: self.stats.get(key.as_ref()).cloned(),
        });
        frame.undo.insert(key.into_owned(), image);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::EngineConfig;
    use crate::storage::Database;
    use sql_ast::Value;

    fn db_with_rows() -> Database {
        let mut db = Database::new(EngineConfig::dynamic());
        db.execute_sql("CREATE TABLE t0 (c0 INTEGER)").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (1), (2)")
            .unwrap();
        db
    }

    fn count(db: &mut Database, table: &str) -> usize {
        db.query_sql(&format!("SELECT * FROM {table}"))
            .unwrap()
            .row_count()
    }

    #[test]
    fn rollback_restores_rows_and_commit_keeps_them() {
        let mut db = db_with_rows();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (3)").unwrap();
        db.execute_sql("DELETE FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(count(&mut db, "t0"), 2);
        db.execute_sql("ROLLBACK").unwrap();
        assert_eq!(count(&mut db, "t0"), 2);
        let rs = db.query_sql("SELECT c0 FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(rs.row_count(), 1, "deleted row restored");

        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (3)").unwrap();
        db.execute_sql("COMMIT").unwrap();
        assert_eq!(count(&mut db, "t0"), 3);
        assert!(!db.in_transaction());
    }

    #[test]
    fn rollback_undoes_ddl_and_update() {
        let mut db = db_with_rows();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("CREATE TABLE t1 (c0 INTEGER)").unwrap();
        db.execute_sql("INSERT INTO t1 (c0) VALUES (9)").unwrap();
        db.execute_sql("UPDATE t0 SET c0 = 100").unwrap();
        db.execute_sql("ROLLBACK").unwrap();
        assert!(db.query_sql("SELECT * FROM t1").is_err(), "t1 rolled back");
        let rs = db.query_sql("SELECT c0 FROM t0 WHERE c0 = 100").unwrap();
        assert_eq!(rs.row_count(), 0, "update rolled back");
    }

    #[test]
    fn savepoints_rewind_partially_and_survive() {
        let mut db = db_with_rows();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (3)").unwrap();
        db.execute_sql("SAVEPOINT sp1").unwrap();
        db.execute_sql("DELETE FROM t0").unwrap();
        assert_eq!(count(&mut db, "t0"), 0);
        db.execute_sql("ROLLBACK TO sp1").unwrap();
        assert_eq!(count(&mut db, "t0"), 3, "rewound to the savepoint only");
        // The savepoint is still usable.
        db.execute_sql("DELETE FROM t0 WHERE c0 = 3").unwrap();
        db.execute_sql("ROLLBACK TO sp1").unwrap();
        assert_eq!(count(&mut db, "t0"), 3);
        db.execute_sql("COMMIT").unwrap();
        assert_eq!(count(&mut db, "t0"), 3);
    }

    #[test]
    fn release_savepoint_keeps_changes_and_merges_undo() {
        let mut db = db_with_rows();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (3)").unwrap();
        db.execute_sql("SAVEPOINT sp1").unwrap();
        db.execute_sql("DELETE FROM t0 WHERE c0 = 1").unwrap();
        db.execute_sql("SAVEPOINT sp2").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (4)").unwrap();
        assert_eq!(db.transaction_depth(), 3);
        // Releasing sp1 removes sp1 and sp2, keeping every change.
        db.execute_sql("RELEASE SAVEPOINT sp1").unwrap();
        assert_eq!(db.transaction_depth(), 1);
        assert_eq!(count(&mut db, "t0"), 3);
        assert!(
            db.execute_sql("ROLLBACK TO sp1").is_err(),
            "released savepoint is gone"
        );
        // The merged undo still rewinds the whole transaction faithfully.
        db.execute_sql("ROLLBACK").unwrap();
        assert_eq!(count(&mut db, "t0"), 2);
        let rs = db.query_sql("SELECT c0 FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(rs.row_count(), 1, "pre-savepoint delete rolled back");
    }

    #[test]
    fn release_survives_noise_words_and_reports_errors() {
        let mut db = db_with_rows();
        assert!(
            db.execute_sql("RELEASE SAVEPOINT s").is_err(),
            "outside txn"
        );
        db.execute_sql("BEGIN").unwrap();
        assert!(
            db.execute_sql("RELEASE SAVEPOINT ghost").is_err(),
            "unknown savepoint"
        );
        db.execute_sql("SAVEPOINT s").unwrap();
        // Bare `RELEASE s` (noise word omitted) works too.
        db.execute_sql("RELEASE s").unwrap();
        db.execute_sql("COMMIT").unwrap();
    }

    #[test]
    fn transaction_errors_are_reported() {
        let mut db = db_with_rows();
        assert!(db.execute_sql("ROLLBACK").is_err(), "no txn to roll back");
        assert!(
            db.execute_sql("SAVEPOINT s").is_err(),
            "savepoint outside txn"
        );
        db.execute_sql("BEGIN").unwrap();
        assert!(db.execute_sql("BEGIN").is_err(), "no nested transactions");
        assert!(
            db.execute_sql("ROLLBACK TO nope").is_err(),
            "unknown savepoint"
        );
        db.execute_sql("COMMIT").unwrap();
        // COMMIT outside a transaction is the autocommit no-op.
        db.execute_sql("COMMIT").unwrap();
    }

    #[test]
    fn stats_are_rolled_back_with_rows() {
        let mut db = db_with_rows();
        db.execute_sql("ANALYZE t0").unwrap();
        let before = db.stats("t0").cloned();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (3)").unwrap();
        db.execute_sql("ANALYZE t0").unwrap();
        assert_ne!(db.stats("t0").cloned(), before);
        db.execute_sql("ROLLBACK").unwrap();
        assert_eq!(db.stats("t0").cloned(), before);
    }

    #[test]
    fn lost_rollback_fault_keeps_the_writes() {
        let mut db = Database::new(EngineConfig::dynamic().with_faults(&["txn_lost_rollback"]));
        db.execute_sql("CREATE TABLE t0 (c0 INTEGER)").unwrap();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (1)").unwrap();
        db.execute_sql("ROLLBACK").unwrap();
        assert_eq!(count(&mut db, "t0"), 1, "fault: rollback lost");
        assert!(!db.in_transaction());
    }

    #[test]
    fn phantom_commit_fault_discards_the_writes() {
        let mut db = Database::new(EngineConfig::dynamic().with_faults(&["txn_phantom_commit"]));
        db.execute_sql("CREATE TABLE t0 (c0 INTEGER)").unwrap();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (1)").unwrap();
        db.execute_sql("COMMIT").unwrap();
        assert_eq!(count(&mut db, "t0"), 0, "fault: commit turned into abort");
    }

    #[test]
    fn savepoint_collapse_fault_rewinds_to_txn_start() {
        let mut db =
            Database::new(EngineConfig::dynamic().with_faults(&["txn_savepoint_collapse"]));
        db.execute_sql("CREATE TABLE t0 (c0 INTEGER)").unwrap();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (1)").unwrap();
        db.execute_sql("SAVEPOINT sp1").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES (2)").unwrap();
        db.execute_sql("ROLLBACK TO sp1").unwrap();
        // Sound semantics would keep row 1; the fault rewinds everything.
        assert_eq!(count(&mut db, "t0"), 0, "fault: collapsed to txn start");
        db.execute_sql("COMMIT").unwrap();
        assert_eq!(count(&mut db, "t0"), 0);
    }

    #[test]
    fn text_rows_round_trip_through_savepoints() {
        let mut db = Database::new(EngineConfig::strict());
        db.execute_sql("CREATE TABLE t0 (c0 TEXT)").unwrap();
        db.execute_sql("INSERT INTO t0 (c0) VALUES ('a')").unwrap();
        db.execute_sql("BEGIN").unwrap();
        db.execute_sql("UPDATE t0 SET c0 = 'b'").unwrap();
        db.execute_sql("SAVEPOINT s").unwrap();
        db.execute_sql("UPDATE t0 SET c0 = 'c'").unwrap();
        db.execute_sql("ROLLBACK TO s").unwrap();
        db.execute_sql("COMMIT").unwrap();
        let rs = db.query_sql("SELECT c0 FROM t0").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::text("b")]]);
    }
}
