//! Schema catalog: tables, views and indexes known to the engine.

use crate::error::{EngineError, EngineResult};
use sql_ast::{ColumnDef, CreateIndex, CreateTable, CreateView, DataType, Expr, Select};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A column of a stored table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// `NOT NULL` (directly or via primary key).
    pub not_null: bool,
    /// Unique (directly, via primary key, or via a single-column unique
    /// table constraint).
    pub unique: bool,
    /// Part of the primary key.
    pub primary_key: bool,
    /// Default expression, if declared.
    pub default: Option<Expr>,
}

/// The schema of a stored table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Columns (by name) forming the primary key, in key order.
    pub primary_key: Vec<String>,
    /// Additional unique constraints (each a list of column names).
    pub unique_constraints: Vec<Vec<String>>,
    /// Cached shared view of the column names, built once at creation and
    /// handed to every scan's [`crate::RelationBinding`] without cloning.
    shared_column_names: Arc<Vec<String>>,
}

impl TableSchema {
    /// Builds a schema from a `CREATE TABLE` statement.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate column names or constraints that
    /// reference unknown columns.
    pub fn from_create(create: &CreateTable) -> EngineResult<TableSchema> {
        let mut columns: Vec<Column> = Vec::new();
        for def in &create.columns {
            if columns
                .iter()
                .any(|c| c.name.eq_ignore_ascii_case(&def.name))
            {
                return Err(EngineError::catalog(format!(
                    "duplicate column name '{}'",
                    def.name
                )));
            }
            columns.push(column_from_def(def));
        }
        if columns.is_empty() {
            return Err(EngineError::catalog("a table requires at least one column"));
        }
        let mut primary_key: Vec<String> = columns
            .iter()
            .filter(|c| c.primary_key)
            .map(|c| c.name.clone())
            .collect();
        let mut unique_constraints = Vec::new();
        for constraint in &create.constraints {
            match constraint {
                sql_ast::TableConstraint::PrimaryKey(cols) => {
                    if !primary_key.is_empty() {
                        return Err(EngineError::catalog("multiple primary keys declared"));
                    }
                    for col in cols {
                        let found = columns
                            .iter_mut()
                            .find(|c| c.name.eq_ignore_ascii_case(col))
                            .ok_or_else(|| {
                                EngineError::catalog(format!(
                                    "primary key references unknown column '{col}'"
                                ))
                            })?;
                        found.primary_key = true;
                        found.not_null = true;
                        if cols.len() == 1 {
                            found.unique = true;
                        }
                    }
                    primary_key = cols.clone();
                }
                sql_ast::TableConstraint::Unique(cols) => {
                    for col in cols {
                        let found = columns
                            .iter_mut()
                            .find(|c| c.name.eq_ignore_ascii_case(col))
                            .ok_or_else(|| {
                                EngineError::catalog(format!(
                                    "unique constraint references unknown column '{col}'"
                                ))
                            })?;
                        if cols.len() == 1 {
                            found.unique = true;
                        }
                    }
                    unique_constraints.push(cols.clone());
                }
            }
        }
        let shared_column_names = Arc::new(columns.iter().map(|c| c.name.clone()).collect());
        Ok(TableSchema {
            name: create.name.clone(),
            columns,
            primary_key,
            unique_constraints,
            shared_column_names,
        })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Names of all columns, in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Shared view of the column names (no per-call allocation).
    pub fn shared_column_names(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.shared_column_names)
    }
}

/// Case-insensitive map key shared by the catalog and row storage.
/// Generated identifiers are already lowercase, so the common case borrows;
/// only mixed-case names allocate.
pub(crate) fn lowercase_key(name: &str) -> std::borrow::Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(name.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

fn column_from_def(def: &ColumnDef) -> Column {
    Column {
        name: def.name.clone(),
        data_type: def.data_type,
        not_null: def.is_not_null(),
        unique: def.is_unique(),
        primary_key: def.has_primary_key(),
        default: def.constraints.iter().find_map(|c| match c {
            sql_ast::ColumnConstraint::Default(e) => Some(e.clone()),
            _ => None,
        }),
    }
}

/// A view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Optional explicit output column names.
    pub columns: Vec<String>,
    /// The defining query.
    pub query: Select,
}

impl ViewDef {
    /// Builds a view definition from a `CREATE VIEW` statement.
    pub fn from_create(create: &CreateView) -> ViewDef {
        ViewDef {
            name: create.name.clone(),
            columns: create.columns.clone(),
            query: (*create.query).clone(),
        }
    }
}

/// An index definition. The engine builds the actual lookup structure on
/// demand during optimized execution; the catalog only records metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed columns, in key order.
    pub columns: Vec<String>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
    /// Partial-index predicate, if any.
    pub predicate: Option<Expr>,
}

impl IndexDef {
    /// Builds an index definition from a `CREATE INDEX` statement.
    pub fn from_create(create: &CreateIndex) -> IndexDef {
        IndexDef {
            name: create.name.clone(),
            table: create.table.clone(),
            columns: create.columns.clone(),
            unique: create.unique,
            predicate: create.where_clause.clone(),
        }
    }
}

/// The full schema catalog.
///
/// Keys are stored lowercase so lookups are case-insensitive, mirroring how
/// most DBMSs fold unquoted identifiers.
///
/// Object definitions are immutable once registered and live behind `Arc`s,
/// so cloning a catalog — which every `BEGIN` frame and session snapshot
/// does — copies one pointer per object, never a schema, view query or
/// index predicate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<TableSchema>>,
    views: BTreeMap<String, Arc<ViewDef>>,
    indexes: BTreeMap<String, Arc<IndexDef>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> std::borrow::Cow<'_, str> {
        lowercase_key(name)
    }

    /// Is any object (table, view or index) with this name present?
    pub fn name_in_use(&self, name: &str) -> bool {
        let k = Self::key(name);
        self.tables.contains_key(k.as_ref())
            || self.views.contains_key(k.as_ref())
            || self.indexes.contains_key(k.as_ref())
    }

    /// Adds a table schema.
    ///
    /// # Errors
    ///
    /// Fails if an object with the same name already exists.
    pub fn add_table(&mut self, schema: TableSchema) -> EngineResult<()> {
        if self.name_in_use(&schema.name) {
            return Err(EngineError::catalog(format!(
                "object '{}' already exists",
                schema.name
            )));
        }
        self.tables
            .insert(Self::key(&schema.name).into_owned(), Arc::new(schema));
        Ok(())
    }

    /// Adds a view.
    ///
    /// # Errors
    ///
    /// Fails if an object with the same name already exists.
    pub fn add_view(&mut self, view: ViewDef) -> EngineResult<()> {
        if self.name_in_use(&view.name) {
            return Err(EngineError::catalog(format!(
                "object '{}' already exists",
                view.name
            )));
        }
        self.views
            .insert(Self::key(&view.name).into_owned(), Arc::new(view));
        Ok(())
    }

    /// Adds an index.
    ///
    /// # Errors
    ///
    /// Fails if an object with the same name already exists or the indexed
    /// table does not.
    pub fn add_index(&mut self, index: IndexDef) -> EngineResult<()> {
        if self.name_in_use(&index.name) {
            return Err(EngineError::catalog(format!(
                "object '{}' already exists",
                index.name
            )));
        }
        if self.table(&index.table).is_none() {
            return Err(EngineError::catalog(format!(
                "cannot index unknown table '{}'",
                index.table
            )));
        }
        self.indexes
            .insert(Self::key(&index.name).into_owned(), Arc::new(index));
        Ok(())
    }

    /// Looks up a table schema.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(Self::key(name).as_ref()).map(Arc::as_ref)
    }

    /// Looks up a view.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(Self::key(name).as_ref()).map(Arc::as_ref)
    }

    /// Looks up an index.
    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.get(Self::key(name).as_ref()).map(Arc::as_ref)
    }

    /// All indexes on a table.
    pub fn indexes_on(&self, table: &str) -> Vec<&IndexDef> {
        self.indexes
            .values()
            .map(Arc::as_ref)
            .filter(|i| i.table.eq_ignore_ascii_case(table))
            .collect()
    }

    /// Removes a table (and its indexes). Returns `false` if absent.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let removed = self.tables.remove(Self::key(name).as_ref()).is_some();
        if removed {
            self.indexes
                .retain(|_, i| !i.table.eq_ignore_ascii_case(name));
        }
        removed
    }

    /// Removes a view. Returns `false` if absent.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(Self::key(name).as_ref()).is_some()
    }

    /// Removes an index. Returns `false` if absent.
    pub fn drop_index(&mut self, name: &str) -> bool {
        self.indexes.remove(Self::key(name).as_ref()).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name.clone()).collect()
    }

    /// Names of all views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.views.values().map(|v| v.name.clone()).collect()
    }

    /// Names of all indexes, sorted.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.values().map(|i| i.name.clone()).collect()
    }

    /// All table schemas.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values().map(Arc::as_ref)
    }

    /// All views.
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values().map(Arc::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_ast::Statement;
    use sql_parser::parse_statement;

    fn create_table(sql: &str) -> TableSchema {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable(c) => TableSchema::from_create(&c).unwrap(),
            _ => panic!("not a create table"),
        }
    }

    #[test]
    fn table_constraints_are_propagated_to_columns() {
        let schema =
            create_table("CREATE TABLE t0 (c0 INT, c1 TEXT, PRIMARY KEY (c0), UNIQUE (c1))");
        assert_eq!(schema.primary_key, vec!["c0"]);
        assert!(schema.column("c0").unwrap().not_null);
        assert!(schema.column("c0").unwrap().unique);
        assert!(schema.column("c1").unwrap().unique);
        assert_eq!(schema.unique_constraints.len(), 1);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let c = match parse_statement("CREATE TABLE t0 (c0 INT, c0 TEXT)").unwrap() {
            Statement::CreateTable(c) => c,
            _ => unreachable!(),
        };
        assert!(TableSchema::from_create(&c).is_err());
    }

    #[test]
    fn catalog_prevents_name_collisions_across_kinds() {
        let mut cat = Catalog::new();
        cat.add_table(create_table("CREATE TABLE t0 (c0 INT)"))
            .unwrap();
        let view = ViewDef {
            name: "T0".into(),
            columns: vec![],
            query: Select::new(),
        };
        assert!(cat.add_view(view).is_err());
        assert!(cat.table("T0").is_some(), "lookups are case-insensitive");
    }

    #[test]
    fn dropping_a_table_drops_its_indexes() {
        let mut cat = Catalog::new();
        cat.add_table(create_table("CREATE TABLE t0 (c0 INT)"))
            .unwrap();
        cat.add_index(IndexDef {
            name: "i0".into(),
            table: "t0".into(),
            columns: vec!["c0".into()],
            unique: false,
            predicate: None,
        })
        .unwrap();
        assert_eq!(cat.indexes_on("t0").len(), 1);
        assert!(cat.drop_table("t0"));
        assert!(cat.index("i0").is_none());
    }

    #[test]
    fn index_on_unknown_table_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .add_index(IndexDef {
                name: "i0".into(),
                table: "missing".into(),
                columns: vec!["c0".into()],
                unique: false,
                predicate: None,
            })
            .unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Catalog);
    }
}
