//! Concurrent sessions over one shared storage core.
//!
//! [`Engine`] splits the monolithic [`Database`] into a **shared committed
//! state** and per-session handles ([`Engine::session`]). Autocommit
//! statements run directly against the committed state; `BEGIN` gives the
//! session a private transaction built from the PR 3 machinery plus two new
//! concurrency guarantees:
//!
//! * **Begin-time snapshot reads** — `BEGIN` snapshots the committed state
//!   into a private workspace. With copy-on-write storage (see
//!   [`crate::storage`]) the snapshot is **O(tables)**: one shared version
//!   pointer per table, never a row copy. Every statement of the
//!   transaction executes against that workspace (its own writes included),
//!   so concurrent commits by other sessions are invisible until the next
//!   transaction; the first mutation of a table inside the transaction
//!   triggers the one clone-on-write that detaches its version.
//!   `SAVEPOINT`/`ROLLBACK TO`/`RELEASE` run on the workspace's own frame
//!   stack, inheriting the single-connection semantics (and injected
//!   transaction faults) verbatim.
//! * **First-committer-wins conflict detection over row-range write
//!   intent** — the engine tracks per-table commit clocks. Write intent is
//!   derived from statement shape and forms a small lattice of row-id
//!   claims per table:
//!
//!   * *append* — an `INSERT` into a table with no unique key sets
//!     occupies only **fresh row-ids allocated at install**, so two
//!     appenders' claims are disjoint by construction;
//!   * *keyed append* — an `INSERT` into a unique-keyed table additionally
//!     claims the key tuples it inserts: its commit value-checks them
//!     against rows appended concurrently (mirroring the engine's
//!     insert-time uniqueness rule, `NULL` never colliding);
//!   * *existing* — `UPDATE`/`DELETE`/`ANALYZE` (and `INSERT OR IGNORE`,
//!     whose row-dropping depends on the base contents) claim the row-ids
//!     visible in the begin snapshot, `[0, base_len)`;
//!   * *structural* — `CREATE`/`DROP` claim every row-id including future
//!     ones, `[0, ∞)`.
//!
//!   `COMMIT` validates the claims against every commit installed since
//!   its snapshot: overlapping claims abort with a *serialization failure*
//!   error — a learnable statement outcome (the platform sees only the
//!   error text, preserving the SQL-text-only contract). Disjoint claims
//!   **merge**: appenders commit over concurrent appends (fresh rows are
//!   spliced onto the latest committed version), a *pure appender* — a
//!   transaction that read nothing at all — serializes last and merges
//!   even over concurrent `UPDATE`/`DELETE` commits, and an existing-rows
//!   writer merges over concurrent appends whose replay after its
//!   mutations stays unique. Reads performed by a transaction (queries,
//!   observer subqueries) revoke its pure-appender status, which is what
//!   keeps every admitted merge serializable. `BEGIN IMMEDIATE` still
//!   declares eager whole-table intent on every table, so its commit
//!   conflicts with any concurrent commit; `BEGIN [DEFERRED]` accumulates
//!   intent lazily.
//!
//! Three injected **isolation faults** live here (see [`crate::faults`]):
//!
//! * `iso_dirty_read` — the begin-time snapshot overlays other sessions'
//!   *uncommitted* workspace writes;
//! * `iso_lost_update` — `COMMIT` skips first-committer-wins validation
//!   *and* installs whole-table snapshot clobbers instead of merges, so
//!   the later committer silently loses concurrent committed writes;
//! * `iso_nonrepeatable_read` — tables the session has not itself written
//!   are refreshed from the latest committed state before every statement
//!   (read-committed visibility masquerading as snapshot isolation).
//!
//! With a single session and no concurrent commits, every path below
//! reduces to the PR 3 observables: snapshots equal the live state, commits
//! never conflict, and the `txn_*` faults keep their single-connection
//! behaviour (the workspace carries the same [`FaultConfig`], and a lost
//! rollback installs its writes exactly like the undo-log variant did).
//!
//! [`FaultConfig`]: crate::faults::FaultConfig

use crate::config::EngineConfig;
use crate::error::{EngineError, EngineResult};
use crate::exec::{ExecutionMode, StatementResult};
use crate::storage::{Database, ResultSet};
use sql_ast::{BeginMode, Select, Statement};
use std::cell::{Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

/// The marker substring carried by every commit-time conflict error. The
/// testing platform (which sees only SQL text and error strings) recognises
/// conflict aborts by it.
pub const SERIALIZATION_FAILURE: &str = "serialization failure";

/// What part of a table's row-id space one statement claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    /// Fresh row-ids only (a blind `INSERT`): disjoint from every other
    /// append and from claims on the begin-snapshot rows.
    Append,
    /// Fresh row-ids plus the table's unique-key space: a literal `INSERT`
    /// into a table with unique key sets reads those keys to check
    /// uniqueness, so its commit additionally validates that no concurrent
    /// append occupied the same key tuples.
    KeyedAppend,
    /// The row-ids visible in the begin snapshot (`UPDATE`, `DELETE`,
    /// `ANALYZE`, and inserts that must read the base relation).
    Existing,
    /// Every row-id, including future ones (`CREATE`/`DROP`).
    Structural,
}

/// The accumulated claim of a transaction on one table — the join of the
/// per-statement [`WriteKind`]s over the `{append ⊑ existing ⊑ structural}`
/// lattice. A table is present in [`OpenTxn::writes`] as soon as any
/// statement wrote it, so "append-only" is the default claim.
#[derive(Debug, Clone, Copy, Default)]
struct TableClaim {
    /// The transaction touched rows that existed at `BEGIN`.
    existing: bool,
    /// The transaction created or dropped the table (installed wholesale).
    structural: bool,
    /// The transaction's appends occupy unique-key space (their commit
    /// validates key disjointness against concurrent appends).
    keyed: bool,
}

impl TableClaim {
    fn raise(&mut self, kind: WriteKind) {
        match kind {
            WriteKind::Append => {}
            WriteKind::KeyedAppend => self.keyed = true,
            WriteKind::Existing => self.existing = true,
            WriteKind::Structural => {
                self.existing = true;
                self.structural = true;
            }
        }
    }
}

/// One open transaction: the session's private snapshot workspace plus the
/// bookkeeping first-committer-wins validation needs.
struct OpenTxn {
    /// Snapshot of the committed state as of `BEGIN` (plus fault overlays),
    /// with one PR 3 frame pushed so savepoints work unchanged. With CoW
    /// storage this shares every table version with the committed state
    /// until first mutation.
    workspace: Database,
    /// Commit clock at `BEGIN`; commits installed after it may conflict.
    begin_clock: u64,
    /// Catalog version at `BEGIN` (DDL transactions conflict coarsely).
    begin_catalog: u64,
    /// Eager whole-table intent (`BEGIN IMMEDIATE`): validated against any
    /// concurrent commit but never installed.
    intent: BTreeSet<String>,
    /// Tables actually written (lowercased), with the row-range claim the
    /// transaction holds on each; validated *and* installed.
    writes: BTreeMap<String, TableClaim>,
    /// Committed row count per table as of `BEGIN` — the boundary between
    /// the snapshot's row-ids and the fresh row-ids appends occupy.
    begin_lens: BTreeMap<String, usize>,
    /// Tables (lowercased) on which an `INSERT` statement *failed* inside
    /// this transaction. A failure read the snapshot (e.g. a uniqueness
    /// check against rows another transaction may delete), so installs
    /// touching these tables poison existing-rows merges (`keyed_dirty`).
    failed_inserts: BTreeSet<String>,
    /// `true` while the transaction has read nothing at all: every
    /// statement so far was a blind literal `INSERT`. Pure appenders
    /// serialize last and merge over any concurrent non-structural commit.
    pure: bool,
    /// Whether the transaction ran DDL (catalog installed wholesale).
    ddl: bool,
}

/// Per-table commit clocks: when the table was last touched at all, last
/// touched by a transaction that read something, and last structurally
/// replaced. The three tiers are what make row-range validation a set of
/// integer comparisons instead of a row-id interval scan.
#[derive(Debug, Clone, Copy, Default)]
struct TableVersion {
    /// Clock of the last installed commit touching the table.
    any: u64,
    /// Clock of the last installed commit by a non-pure transaction (one
    /// whose writes could depend on what it read).
    impure: u64,
    /// Clock of the last installed commit that appended into the table's
    /// unique-key space (existing-row claims cannot merge past it: an
    /// update could collide with the appended keys in the serial order).
    keyed: u64,
    /// Clock of the last keyed install whose transaction also had a
    /// *failed* insert on this table. That failure's verdict read the base
    /// rows, so no existing-rows claim may merge past it — serially after
    /// the merge the rejected insert might have succeeded.
    keyed_dirty: u64,
    /// Clock of the last structural (create/drop, or clobber-faulted)
    /// install.
    structural: u64,
}

/// Counters for copy-on-write effectiveness and row-range conflict
/// avoidance, reported per campaign (see `CampaignMetrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// `BEGIN` snapshots taken.
    pub txn_begins: u64,
    /// Table versions shared into snapshots at `BEGIN` (pointer bumps).
    pub tables_snapshotted: u64,
    /// Table versions actually deep-cloned on first write (CoW detaches),
    /// across workspaces and the committed state.
    pub tables_cow_cloned: u64,
    /// Commits that row-range validation admitted (and merged) but
    /// table-level first-committer-wins would have aborted.
    pub conflicts_avoided: u64,
}

impl CowStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CowStats) {
        self.txn_begins += other.txn_begins;
        self.tables_snapshotted += other.tables_snapshotted;
        self.tables_cow_cloned += other.tables_cow_cloned;
        self.conflicts_avoided += other.conflicts_avoided;
    }
}

/// The shared core behind an [`Engine`]: the committed database plus the
/// commit clocks, per-table versions and the open-transaction registry.
struct EngineCore {
    committed: Database,
    /// Bumped once per installed commit (including autocommit writes).
    clock: u64,
    /// Per-table (lowercased) clocks of the last installed commits.
    versions: BTreeMap<String, TableVersion>,
    /// Clock value of the last committed catalog change.
    catalog_version: u64,
    /// Open transactions, keyed by session id (deterministic iteration).
    open: BTreeMap<u64, OpenTxn>,
    next_session: u64,
    conflict_aborts: u64,
    cow: CowStats,
}

/// Tables a statement writes (lowercased storage keys) and the row-range
/// claim each write takes, used for both lazy write intent and autocommit
/// version bumps. Intent is declared by statement shape — an `UPDATE`
/// matching zero rows still claims the snapshot rows, which is
/// deterministic and strictly conservative.
fn write_targets(stmt: &Statement, db: &Database) -> Vec<(String, WriteKind)> {
    let key = |name: &str| crate::catalog::lowercase_key(name).into_owned();
    match stmt {
        Statement::Insert(i) => vec![(key(&i.table), insert_kind(i, db))],
        Statement::Update(u) => vec![(key(&u.table), WriteKind::Existing)],
        Statement::Delete(d) => vec![(key(&d.table), WriteKind::Existing)],
        Statement::CreateTable(c) => vec![(key(&c.name), WriteKind::Structural)],
        Statement::Drop {
            kind: sql_ast::DropKind::Table,
            name,
            ..
        } => vec![(key(name), WriteKind::Structural)],
        Statement::Analyze(Some(t)) => vec![(key(t), WriteKind::Existing)],
        Statement::Analyze(None) => db
            .data
            .keys()
            .map(|t| (t.clone(), WriteKind::Existing))
            .collect(),
        _ => Vec::new(),
    }
}

/// The claim an `INSERT` takes on its target table. Inserts only ever
/// occupy fresh row-ids, so the claim is *append*-shaped regardless of
/// what the insert's value expressions read — reads are accounted for by
/// transaction purity, and key-space reads by the *keyed* variant. Only
/// `OR IGNORE` demotes to an existing-rows claim: its row-dropping effect
/// depends on the base relation's full contents, which merging could
/// change.
fn insert_kind(insert: &sql_ast::Insert, db: &Database) -> WriteKind {
    if insert.or_ignore {
        return WriteKind::Existing;
    }
    match db.catalog.table(&insert.table) {
        Some(schema) if crate::exec::unique_key_sets(db, schema).is_empty() => WriteKind::Append,
        Some(_) => WriteKind::KeyedAppend,
        None => WriteKind::Existing,
    }
}

/// Whether a statement's effect can depend on state it reads arbitrarily.
/// Blind literal inserts keep a transaction *pure* — including inserts
/// into unique-keyed tables, whose key reads are validated separately by
/// the keyed-append machinery; inserts evaluating subqueries (and
/// everything that is not an insert) break purity.
fn statement_reads_rows(stmt: &Statement, _db: &Database) -> bool {
    match stmt {
        Statement::Insert(i) => {
            i.or_ignore
                || i.values
                    .iter()
                    .flatten()
                    .any(sql_ast::Expr::contains_subquery)
        }
        _ => true,
    }
}

/// Do the transaction's rows on `table` collide with rows appended to the
/// committed table since `BEGIN`, under any of the table's unique key
/// sets? For an append claim, "our" rows are the transaction's fresh rows
/// (`[base_len..]`) — would merging install a duplicate key? For an
/// existing-rows claim, the *whole* workspace table is compared — would
/// the concurrent appends, replayed after this transaction's
/// updates/deletes, have failed their uniqueness checks? Mirrors the
/// engine's insert-time enforcement exactly: key tuples containing `NULL`
/// never collide, and partial unique indexes are not enforced. A missing
/// table or schema is reported as a collision (the caller then conflicts
/// conservatively).
fn append_keys_collide(
    txn: &OpenTxn,
    committed: &Database,
    table: &str,
    ours_whole_table: bool,
) -> bool {
    let base_len = txn.begin_lens.get(table).copied().unwrap_or(0);
    let Some(schema) = txn.workspace.catalog.table(table) else {
        return true;
    };
    let key_sets = crate::exec::unique_key_sets(&txn.workspace, schema);
    let (Some(workspace), Some(current)) =
        (txn.workspace.data.get(table), committed.data.get(table))
    else {
        return true;
    };
    let ours = if ours_whole_table {
        &workspace[..]
    } else {
        workspace.get(base_len..).unwrap_or(&[])
    };
    let theirs = current.get(base_len..).unwrap_or(&[]);
    if ours.is_empty() || theirs.is_empty() {
        return false;
    }
    let null_marker = sql_ast::Value::Null.dedup_key();
    let tuple = |row: &crate::storage::Row, key: &[usize]| -> Option<Vec<String>> {
        let parts: Vec<String> = key
            .iter()
            .map(|&i| {
                row.get(i)
                    .cloned()
                    .unwrap_or(sql_ast::Value::Null)
                    .dedup_key()
            })
            .collect();
        // NULL never equals NULL under uniqueness.
        if parts.contains(&null_marker) {
            None
        } else {
            Some(parts)
        }
    };
    for key in &key_sets {
        let their_keys: BTreeSet<Vec<String>> =
            theirs.iter().filter_map(|row| tuple(row, key)).collect();
        if their_keys.is_empty() {
            continue;
        }
        if ours
            .iter()
            .filter_map(|row| tuple(row, key))
            .any(|k| their_keys.contains(&k))
        {
            return true;
        }
    }
    false
}

/// `iso_nonrepeatable_read`: refresh every table the transaction has not
/// itself written from the latest committed state (version-pointer bumps
/// under CoW storage).
fn refresh_unwritten(committed: &Database, txn: &mut OpenTxn) {
    let tables: Vec<String> = txn
        .workspace
        .data
        .keys()
        .filter(|t| !txn.writes.contains_key(*t))
        .cloned()
        .collect();
    for t in tables {
        if let Some(rows) = committed.data.get(&t) {
            txn.workspace.data.insert(t.clone(), rows.clone());
            match committed.stats.get(&t) {
                Some(stats) => {
                    txn.workspace.stats.insert(t, stats.clone());
                }
                None => {
                    txn.workspace.stats.remove(&t);
                }
            }
        }
    }
}

impl EngineCore {
    fn merge_workspace_coverage(&mut self, txn: &OpenTxn) {
        let cov = txn.workspace.coverage_snapshot();
        self.committed.record_coverage(|c| c.merge(&cov));
        // The workspace's CoW detaches happened on behalf of this engine's
        // transactions; fold them into the engine-wide counters.
        self.cow.tables_cow_cloned += txn.workspace.cow_clones();
    }

    /// Installs a transaction's written tables (and, for DDL, its catalog)
    /// into the committed state, bumping the commit clock.
    ///
    /// Validated claims install by their row-range shape:
    ///
    /// * *structural* — the workspace version replaces the committed one
    ///   wholesale (create/drop; also every table when the
    ///   `iso_lost_update` fault degrades installs to snapshot clobbers,
    ///   which is that bug's observable);
    /// * *existing* — the workspace version, with any rows appended to the
    ///   committed table since `BEGIN` spliced back on top (those appends
    ///   were validated disjoint);
    /// * *append-only* — the current committed version with the
    ///   workspace's fresh rows (`[base_len..]`) appended, so concurrent
    ///   appenders compose instead of clobbering each other.
    ///
    /// In the common no-concurrent-commit case every branch degenerates to
    /// an `Arc` pointer bump. Faulted installs (`txn_lost_rollback`,
    /// `iso_lost_update`) skip validation, so the splice points are
    /// saturating — deterministic even when the committed table shrank
    /// underneath the transaction.
    fn install(&mut self, txn: &OpenTxn) {
        self.clock += 1;
        let clobber = self.committed.config.faults.iso_lost_update;
        if txn.ddl {
            self.committed.catalog = txn.workspace.catalog.clone();
            self.catalog_version = self.clock;
        }
        for (t, claim) in &txn.writes {
            let base_len = txn.begin_lens.get(t).copied().unwrap_or(0);
            let workspace = txn.workspace.data.get(t);
            let committed = self.committed.data.get(t);
            // Was the committed table touched by any commit since this
            // transaction's snapshot? If not, the workspace version can be
            // installed by pointer; otherwise the disjoint row ranges are
            // spliced. (`self.clock` was already bumped for this install.)
            let touched_since = self
                .versions
                .get(t)
                .is_some_and(|v| v.any > txn.begin_clock);
            // `None` rows drop the table; `Some(None)` for stats keeps the
            // committed entry untouched (append-only installs never carry
            // new statistics — `ANALYZE` raises the claim to *existing*).
            let (rows, stats) = match committed {
                Some(current) if !clobber && !claim.structural && claim.existing => {
                    let rows = match workspace {
                        Some(workspace) if touched_since => {
                            // Concurrent (validated: pure append) commits
                            // grew the table past the snapshot boundary;
                            // splice the fresh committed rows onto the
                            // workspace version.
                            let mut rows = workspace.as_ref().clone();
                            rows.extend_from_slice(current.get(base_len..).unwrap_or(&[]));
                            Some(Arc::new(rows))
                        }
                        Some(workspace) => Some(Arc::clone(workspace)),
                        None => None,
                    };
                    (rows, Some(txn.workspace.stats.get(t).cloned()))
                }
                Some(current) if !clobber && !claim.structural => {
                    let rows = match workspace {
                        Some(workspace) if touched_since => {
                            // Append onto whatever is committed now — the
                            // fresh rows are this transaction's only claim.
                            let fresh = workspace.get(base_len..).unwrap_or(&[]);
                            let mut rows = current.as_ref().clone();
                            rows.extend_from_slice(fresh);
                            Some(Arc::new(rows))
                        }
                        Some(workspace) => Some(Arc::clone(workspace)),
                        None => None,
                    };
                    (rows, None)
                }
                // Structural/clobber installs, and tables the committed
                // state no longer holds, replace the version wholesale.
                _ => (
                    workspace.cloned(),
                    Some(txn.workspace.stats.get(t).cloned()),
                ),
            };
            match rows {
                Some(rows) => {
                    self.committed.data.insert(t.clone(), rows);
                }
                None => {
                    self.committed.data.remove(t);
                }
            }
            if let Some(stats) = stats {
                match stats {
                    Some(stats) => {
                        self.committed.stats.insert(t.clone(), stats);
                    }
                    None => {
                        self.committed.stats.remove(t);
                    }
                }
            }
            let version = self.versions.entry(t.clone()).or_default();
            version.any = self.clock;
            if !txn.pure || clobber {
                version.impure = self.clock;
            }
            if claim.keyed {
                version.keyed = self.clock;
                if txn.failed_inserts.contains(t) {
                    version.keyed_dirty = self.clock;
                }
            }
            if claim.structural || clobber {
                version.structural = self.clock;
            }
        }
    }

    fn begin_session(&mut self, id: u64, mode: BeginMode) -> EngineResult<StatementResult> {
        if self.open.contains_key(&id) {
            return Err(EngineError::runtime(
                "cannot start a transaction within a transaction",
            ));
        }
        self.committed
            .record_coverage(|cov| cov.statement("STMT_BEGIN"));
        // O(tables): the snapshot shares every table's current version
        // (one Arc bump per table), never row data. The workspace's CoW
        // counter starts from zero so the per-transaction clone count can
        // be merged back on close.
        let workspace = self.committed.clone();
        workspace.reset_cow_clones();
        self.cow.txn_begins += 1;
        self.cow.tables_snapshotted += workspace.data.len() as u64;
        let begin_lens: BTreeMap<String, usize> = self
            .committed
            .data
            .iter()
            .map(|(t, rows)| (t.clone(), rows.len()))
            .collect();
        let mut workspace = workspace;
        if self.committed.config.faults.iso_dirty_read {
            // Injected fault: the snapshot overlays the *uncommitted*
            // workspace writes of every other open session.
            for (other_id, other) in &self.open {
                if *other_id == id {
                    continue;
                }
                for t in other.writes.keys() {
                    match other.workspace.data.get(t) {
                        Some(rows) => {
                            workspace.data.insert(t.clone(), Arc::clone(rows));
                        }
                        None => {
                            workspace.data.remove(t);
                        }
                    }
                }
            }
        }
        workspace.txn_begin()?;
        let intent: BTreeSet<String> = if mode.is_immediate() {
            workspace.data.keys().cloned().collect()
        } else {
            BTreeSet::new()
        };
        self.open.insert(
            id,
            OpenTxn {
                workspace,
                begin_clock: self.clock,
                begin_catalog: self.catalog_version,
                intent,
                writes: BTreeMap::new(),
                begin_lens,
                failed_inserts: BTreeSet::new(),
                pure: true,
                ddl: false,
            },
        );
        Ok(StatementResult::Ok)
    }

    fn commit_session(&mut self, id: u64) -> EngineResult<StatementResult> {
        let Some(mut txn) = self.open.remove(&id) else {
            // Autocommit COMMIT is the usual no-op.
            return self.committed.execute(&Statement::Commit);
        };
        self.committed
            .record_coverage(|cov| cov.statement("STMT_COMMIT"));
        if !self.committed.config.faults.iso_lost_update {
            // First-committer-wins validation over row-range claims and
            // eager intent. A claim conflicts only when a commit installed
            // since `BEGIN` could overlap it:
            //
            // * eager (IMMEDIATE) intent and structural claims span the
            //   whole table — any concurrent commit conflicts;
            // * an existing-rows claim conflicts with concurrent impure or
            //   structural commits, but merges over concurrent appends —
            //   pure appends unconditionally, keyed appends when replaying
            //   them after this transaction's updates/deletes would not
            //   collide with its unique keys;
            // * a keyed append read the table's unique-key space: it
            //   conflicts with impure/structural commits outright, and
            //   with concurrent appends only when the actually-inserted
            //   key tuples collide;
            // * a pure plain append occupies only fresh row-ids — it
            //   conflicts solely with structural replacements.
            let overlaps = |t: &String, claim: Option<&TableClaim>| -> bool {
                let version = self.versions.get(t).copied().unwrap_or_default();
                let since = txn.begin_clock;
                match claim {
                    // Eager IMMEDIATE intent: whole-table, like PR 4.
                    None => version.any > since,
                    Some(claim) if claim.structural => version.any > since,
                    Some(claim) if claim.existing => {
                        version.impure > since
                            || version.structural > since
                            || version.keyed_dirty > since
                            || (version.keyed > since
                                && append_keys_collide(&txn, &self.committed, t, true))
                    }
                    Some(claim) if claim.keyed => {
                        version.impure > since
                            || version.structural > since
                            || (version.any > since
                                && append_keys_collide(&txn, &self.committed, t, false))
                    }
                    Some(_) if txn.pure => version.structural > since,
                    Some(_) => version.impure > since || version.structural > since,
                }
            };
            let conflict: Option<String> = txn
                .writes
                .iter()
                .map(|(t, claim)| (t, Some(claim)))
                .chain(txn.intent.iter().map(|t| (t, None)))
                .find(|(t, claim)| overlaps(t, *claim))
                .map(|(t, _)| t.clone());
            let catalog_conflict = txn.ddl && self.catalog_version > txn.begin_catalog;
            if conflict.is_some() || catalog_conflict {
                // The transaction is rewound: its workspace is discarded and
                // the session returns to autocommit.
                self.conflict_aborts += 1;
                self.merge_workspace_coverage(&txn);
                let what = conflict.unwrap_or_else(|| "the catalog".to_string());
                return Err(EngineError::runtime(format!(
                    "{SERIALIZATION_FAILURE}: concurrent update to {what} (first committer wins)"
                )));
            }
            // The commit stands. Record when table-level intent (the PR 4
            // rule: any concurrent commit to a written table conflicts)
            // would have aborted it — the throughput row-range intent buys.
            let table_level = txn
                .writes
                .keys()
                .any(|t| self.versions.get(t).copied().unwrap_or_default().any > txn.begin_clock);
            if table_level {
                self.cow.conflicts_avoided += 1;
            }
        }
        // Close the workspace's frame stack through its own machinery so
        // the single-connection faults (e.g. `txn_phantom_commit`, which
        // reverts the workspace before install) keep their observables.
        txn.workspace.txn_commit()?;
        self.merge_workspace_coverage(&txn);
        self.install(&txn);
        Ok(StatementResult::Ok)
    }

    fn rollback_session(&mut self, id: u64) -> EngineResult<StatementResult> {
        let Some(mut txn) = self.open.remove(&id) else {
            // Matches the single-connection "no transaction is active".
            return self.committed.execute(&Statement::Rollback);
        };
        self.committed
            .record_coverage(|cov| cov.statement("STMT_ROLLBACK"));
        let lost = self.committed.config.faults.txn_lost_rollback;
        txn.workspace.txn_rollback()?;
        self.merge_workspace_coverage(&txn);
        if lost {
            // Injected fault: the rollback is lost — the writes land as if
            // committed (no conflict validation; the undo log is gone).
            self.install(&txn);
        }
        Ok(StatementResult::Ok)
    }

    fn execute_session(&mut self, id: u64, stmt: &Statement) -> EngineResult<StatementResult> {
        match stmt {
            Statement::Begin(mode) => self.begin_session(id, *mode),
            Statement::Commit => self.commit_session(id),
            Statement::Rollback => self.rollback_session(id),
            Statement::Savepoint(_) | Statement::RollbackTo(_) | Statement::ReleaseSavepoint(_) => {
                match self.open.get_mut(&id) {
                    // Inside a transaction the workspace's own frame stack
                    // implements savepoints (PR 3 semantics and faults).
                    Some(txn) => txn.workspace.execute(stmt),
                    // Outside one, the committed database produces the
                    // canonical "outside a transaction" errors.
                    None => self.committed.execute(stmt),
                }
            }
            other => match self.open.get_mut(&id) {
                Some(txn) => {
                    if self.committed.config.faults.iso_nonrepeatable_read {
                        refresh_unwritten(&self.committed, txn);
                    }
                    let result = txn.workspace.execute(other);
                    if result.is_ok() {
                        for (t, kind) in write_targets(other, &txn.workspace) {
                            txn.writes.entry(t).or_default().raise(kind);
                        }
                        if statement_reads_rows(other, &txn.workspace) {
                            txn.pure = false;
                        }
                        if other.is_ddl() {
                            txn.ddl = true;
                            txn.pure = false;
                        }
                    } else if let Statement::Insert(insert) = other {
                        // The rejection read the snapshot (uniqueness
                        // checks); remember it so installs touching this
                        // table poison existing-rows merges.
                        txn.failed_inserts
                            .insert(crate::catalog::lowercase_key(&insert.table).into_owned());
                    }
                    result
                }
                None => {
                    let result = self.committed.execute(other);
                    if result.is_ok() {
                        let targets = write_targets(other, &self.committed);
                        if !targets.is_empty() || other.is_ddl() {
                            self.clock += 1;
                            let impure = statement_reads_rows(other, &self.committed);
                            for (t, kind) in targets {
                                let version = self.versions.entry(t).or_default();
                                version.any = self.clock;
                                if impure {
                                    version.impure = self.clock;
                                }
                                if kind == WriteKind::KeyedAppend {
                                    version.keyed = self.clock;
                                }
                                if kind == WriteKind::Structural {
                                    version.structural = self.clock;
                                }
                            }
                            if other.is_ddl() {
                                self.catalog_version = self.clock;
                            }
                        }
                    }
                    result
                }
            },
        }
    }

    fn query_session(
        &mut self,
        id: u64,
        select: &Select,
        mode: ExecutionMode,
    ) -> EngineResult<ResultSet> {
        match self.open.get_mut(&id) {
            Some(txn) => {
                if self.committed.config.faults.iso_nonrepeatable_read {
                    refresh_unwritten(&self.committed, txn);
                }
                // The transaction observed database state: its later writes
                // may depend on it, so it loses pure-appender merging.
                txn.pure = false;
                txn.workspace.query(select, mode)
            }
            None => self.committed.query(select, mode),
        }
    }
}

/// A shared storage core serving any number of concurrent sessions.
///
/// # Examples
///
/// ```
/// use sql_engine::{Engine, EngineConfig};
/// use sql_parser::parse_statement;
///
/// let engine = Engine::new(EngineConfig::dynamic());
/// let mut alice = engine.session();
/// let mut bob = engine.session();
/// let run = |s: &mut sql_engine::EngineSession, sql: &str| {
///     s.execute(&parse_statement(sql).unwrap()).map(|_| ())
/// };
/// run(&mut alice, "CREATE TABLE t0 (c0 INTEGER)").unwrap();
/// run(&mut alice, "BEGIN").unwrap();
/// run(&mut alice, "INSERT INTO t0 (c0) VALUES (1)").unwrap();
/// // Bob's snapshot cannot see Alice's uncommitted insert.
/// run(&mut bob, "BEGIN").unwrap();
/// let rs = bob.query(&match parse_statement("SELECT * FROM t0").unwrap() {
///     sql_ast::Statement::Select(q) => *q,
///     _ => unreachable!(),
/// }, sql_engine::ExecutionMode::Optimized).unwrap();
/// assert_eq!(rs.row_count(), 0);
/// ```
pub struct Engine {
    core: Rc<RefCell<EngineCore>>,
}

impl Engine {
    /// Creates an engine with an empty committed database.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::from_database(Database::new(config))
    }

    /// Wraps an existing database as the committed state. The database must
    /// not have an open single-connection transaction (a later session
    /// `BEGIN` would fail).
    pub fn from_database(committed: Database) -> Engine {
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                committed,
                clock: 0,
                versions: BTreeMap::new(),
                catalog_version: 0,
                open: BTreeMap::new(),
                next_session: 0,
                conflict_aborts: 0,
                cow: CowStats::default(),
            })),
        }
    }

    /// Opens a new session over the shared core.
    pub fn session(&self) -> EngineSession {
        let mut core = self.core.borrow_mut();
        let id = core.next_session;
        core.next_session += 1;
        EngineSession {
            core: Rc::clone(&self.core),
            id,
        }
    }

    /// The committed database (for inspection: coverage, catalog, rows).
    /// Sessions' uncommitted workspaces are not visible here.
    pub fn committed(&self) -> Ref<'_, Database> {
        Ref::map(self.core.borrow(), |core| &core.committed)
    }

    /// Number of commit attempts rejected by first-committer-wins
    /// validation since the engine was created.
    pub fn conflict_aborts(&self) -> u64 {
        self.core.borrow().conflict_aborts
    }

    /// A clone whose storage counters start from zero — the shape a
    /// *checkpoint* wants: restoring from it must not re-report work the
    /// original engine already counted. Shares committed table versions
    /// exactly like [`Engine::clone`].
    pub fn checkpoint_clone(&self) -> Engine {
        let engine = self.clone();
        {
            let mut core = engine.core.borrow_mut();
            core.cow = CowStats::default();
            core.conflict_aborts = 0;
            core.committed.reset_cow_clones();
        }
        engine
    }

    /// Copy-on-write effectiveness and row-range conflict-avoidance
    /// counters since the engine was created: `BEGIN` snapshots taken,
    /// table versions shared vs. actually deep-cloned (workspaces and the
    /// committed state combined), and commits that row-range intent
    /// admitted where table-level intent would have aborted.
    pub fn cow_stats(&self) -> CowStats {
        let core = self.core.borrow();
        let mut stats = core.cow;
        // Autocommit writes detach the committed version from any open
        // snapshot still sharing it; those clones count too.
        stats.tables_cow_cloned += core.committed.cow_clones();
        stats
    }

    /// Number of sessions currently holding an open transaction.
    pub fn open_transactions(&self) -> usize {
        self.core.borrow().open.len()
    }

    /// The engine configuration (shared by every session's workspace).
    pub fn config(&self) -> EngineConfig {
        self.core.borrow().committed.config.clone()
    }
}

impl Clone for Engine {
    /// Clones the committed state and bookkeeping into an independent core.
    /// With CoW storage this **shares** every committed table version (one
    /// `Arc` bump per table) instead of deep-copying rows; the first write
    /// on either side detaches its copy, so mutations never leak between a
    /// clone and the original. Open transactions are **not** carried over
    /// (their session handles would dangle); clones serve fleet setup and
    /// ground-truth bisection, which always start from a quiescent engine —
    /// both now cost O(tables) instead of O(rows).
    fn clone(&self) -> Engine {
        let core = self.core.borrow();
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                committed: core.committed.clone(),
                clock: core.clock,
                versions: core.versions.clone(),
                catalog_version: core.catalog_version,
                open: BTreeMap::new(),
                next_session: core.next_session,
                conflict_aborts: core.conflict_aborts,
                cow: core.cow,
            })),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.core.borrow();
        write!(
            f,
            "Engine(clock {}, {} open txns)",
            core.clock,
            core.open.len()
        )
    }
}

/// One connection's handle onto a shared [`Engine`].
///
/// Outside a transaction, statements execute directly against the committed
/// state (autocommit). `BEGIN` opens a snapshot-isolated transaction; see
/// the module documentation for the semantics. Dropping a session rolls its
/// open transaction back.
pub struct EngineSession {
    core: Rc<RefCell<EngineCore>>,
    id: u64,
}

impl EngineSession {
    /// Executes one statement in this session.
    ///
    /// # Errors
    ///
    /// Engine errors as usual; additionally, `COMMIT` fails with a
    /// `serialization failure` runtime error when first-committer-wins
    /// validation rejects the transaction (which is then rolled back).
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<StatementResult> {
        self.core.borrow_mut().execute_session(self.id, stmt)
    }

    /// Runs a query in this session: against the transaction's snapshot
    /// workspace when one is open, against the committed state otherwise.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn query(&self, select: &Select, mode: ExecutionMode) -> EngineResult<ResultSet> {
        self.core.borrow_mut().query_session(self.id, select, mode)
    }

    /// Whether this session has an open transaction.
    pub fn in_transaction(&self) -> bool {
        self.core.borrow().open.contains_key(&self.id)
    }

    /// Records coverage on the shared committed tracker (workspace coverage
    /// is merged into it when a transaction closes).
    pub fn record_coverage(&self, f: impl FnOnce(&mut crate::coverage::CoverageTracker)) {
        self.core.borrow().committed.record_coverage(f);
    }
}

impl Drop for EngineSession {
    fn drop(&mut self) {
        // A dropped session rolls back: its workspace (and any uncommitted
        // writes) simply disappears from the registry.
        if let Ok(mut core) = self.core.try_borrow_mut() {
            if let Some(txn) = core.open.remove(&self.id) {
                core.merge_workspace_coverage(&txn);
            }
        }
    }
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineSession#{}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_parser::parse_statement;

    fn run(session: &mut EngineSession, sql: &str) -> EngineResult<StatementResult> {
        session.execute(&parse_statement(sql).expect("test SQL parses"))
    }

    fn rows(session: &EngineSession, table: &str) -> Vec<Vec<sql_ast::Value>> {
        let stmt = parse_statement(&format!("SELECT * FROM {table}")).unwrap();
        let Statement::Select(q) = stmt else {
            unreachable!()
        };
        session.query(&q, ExecutionMode::Optimized).unwrap().rows
    }

    fn engine_with_table(faults: &[&str]) -> Engine {
        let engine = Engine::new(EngineConfig::dynamic().with_faults(faults));
        let mut setup = engine.session();
        run(&mut setup, "CREATE TABLE t0 (c0 INTEGER)").unwrap();
        run(&mut setup, "CREATE TABLE t1 (c0 INTEGER)").unwrap();
        run(&mut setup, "INSERT INTO t0 (c0) VALUES (1)").unwrap();
        engine
    }

    #[test]
    fn snapshot_isolation_hides_concurrent_writes() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        // A's snapshot predates B's autocommit insert.
        assert_eq!(rows(&a, "t0").len(), 1);
        // A's own writes are visible to A but not to B.
        run(&mut a, "INSERT INTO t1 (c0) VALUES (9)").unwrap();
        assert_eq!(rows(&a, "t1").len(), 1);
        assert_eq!(rows(&b, "t1").len(), 0);
        run(&mut a, "COMMIT").unwrap();
        assert_eq!(rows(&b, "t1").len(), 1);
        assert_eq!(rows(&b, "t0").len(), 2);
    }

    #[test]
    fn first_committer_wins_aborts_the_second_existing_row_writer() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "UPDATE t0 SET c0 = 10").unwrap();
        run(&mut b, "UPDATE t0 SET c0 = 20").unwrap();
        run(&mut a, "COMMIT").unwrap();
        let err = run(&mut b, "COMMIT").unwrap_err();
        assert!(
            err.message.contains(SERIALIZATION_FAILURE),
            "unexpected error: {err}"
        );
        // B was rewound: only A's update landed, and B is back in autocommit.
        assert!(!b.in_transaction());
        assert_eq!(rows(&b, "t0"), vec![vec![sql_ast::Value::Integer(10)]]);
        assert_eq!(engine.conflict_aborts(), 1);
        assert_eq!(engine.cow_stats().conflicts_avoided, 0);
    }

    #[test]
    fn concurrent_appends_merge_instead_of_aborting() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        // Table-level intent would abort B here; append claims are
        // disjoint, so B's fresh row is spliced onto A's commit.
        run(&mut b, "COMMIT").unwrap();
        let mut landed: Vec<i64> = rows(&b, "t0")
            .into_iter()
            .map(|r| match r[0] {
                sql_ast::Value::Integer(i) => i,
                _ => panic!("integer column"),
            })
            .collect();
        landed.sort_unstable();
        assert_eq!(landed, vec![1, 10, 20]);
        assert_eq!(engine.conflict_aborts(), 0);
        assert_eq!(engine.cow_stats().conflicts_avoided, 1);
    }

    #[test]
    fn pure_appender_merges_over_concurrent_update() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "UPDATE t0 SET c0 = 5").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        // B read nothing (a blind literal insert), so it serializes after
        // A's update and merges.
        run(&mut b, "COMMIT").unwrap();
        let mut landed: Vec<i64> = rows(&b, "t0")
            .into_iter()
            .map(|r| match r[0] {
                sql_ast::Value::Integer(i) => i,
                _ => panic!("integer column"),
            })
            .collect();
        landed.sort_unstable();
        assert_eq!(landed, vec![5, 20]);
        assert_eq!(engine.conflict_aborts(), 0);
    }

    #[test]
    fn observing_appender_conflicts_with_concurrent_update() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "DELETE FROM t0").unwrap();
        // B's insert *reads* t0 through its subquery: its appended value
        // depends on the snapshot, so it cannot serialize after A.
        run(
            &mut b,
            "INSERT INTO t0 (c0) VALUES ((SELECT COUNT(*) FROM t0))",
        )
        .unwrap();
        run(&mut a, "COMMIT").unwrap();
        let err = run(&mut b, "COMMIT").unwrap_err();
        assert!(err.message.contains(SERIALIZATION_FAILURE));
        assert_eq!(rows(&a, "t0").len(), 0, "only the delete landed");
    }

    #[test]
    fn keyed_appends_merge_on_disjoint_keys_and_conflict_on_collisions() {
        let engine = Engine::new(EngineConfig::dynamic());
        let mut setup = engine.session();
        run(&mut setup, "CREATE TABLE u0 (c0 INTEGER PRIMARY KEY)").unwrap();
        // Disjoint primary keys: both appenders commit and merge.
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO u0 (c0) VALUES (1)").unwrap();
        run(&mut b, "INSERT INTO u0 (c0) VALUES (2)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        assert_eq!(rows(&a, "u0").len(), 2);
        assert_eq!(engine.conflict_aborts(), 0);
        // Colliding keys: blind merging would install a duplicate primary
        // key, so the second committer aborts.
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO u0 (c0) VALUES (7)").unwrap();
        run(&mut b, "INSERT INTO u0 (c0) VALUES (7)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        let err = run(&mut b, "COMMIT").unwrap_err();
        assert!(err.message.contains(SERIALIZATION_FAILURE));
        assert_eq!(rows(&a, "u0").len(), 3);
        // An existing-rows writer merges past a concurrent keyed append
        // when replaying the append after its updates stays unique...
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO u0 (c0) VALUES (9)").unwrap();
        run(&mut b, "UPDATE u0 SET c0 = c0 + 100").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        let mut landed: Vec<i64> = rows(&a, "u0")
            .into_iter()
            .map(|r| match r[0] {
                sql_ast::Value::Integer(i) => i,
                _ => panic!("integer column"),
            })
            .collect();
        landed.sort_unstable();
        assert_eq!(landed, vec![9, 101, 102, 107]);
        // ...but conflicts when its updates collide with the appended key
        // (serially the append would have failed its uniqueness check).
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO u0 (c0) VALUES (55)").unwrap();
        run(&mut b, "UPDATE u0 SET c0 = 55 WHERE c0 = 9").unwrap();
        run(&mut a, "COMMIT").unwrap();
        let err = run(&mut b, "COMMIT").unwrap_err();
        assert!(err.message.contains(SERIALIZATION_FAILURE));
    }

    #[test]
    fn begin_shares_versions_and_first_write_clones_once() {
        let engine = engine_with_table(&[]);
        let baseline = engine.cow_stats();
        assert_eq!(
            baseline.tables_cow_cloned, 0,
            "autocommit writes on a quiescent engine never clone"
        );
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        let after_begin = engine.cow_stats();
        assert_eq!(after_begin.txn_begins, baseline.txn_begins + 1);
        assert_eq!(
            after_begin.tables_snapshotted,
            baseline.tables_snapshotted + 2,
            "both tables snapshotted by pointer"
        );
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (3)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        let after_commit = engine.cow_stats();
        assert_eq!(
            after_commit.tables_cow_cloned,
            baseline.tables_cow_cloned + 1,
            "t0 detached once, t1 never copied"
        );
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        assert_eq!(rows(&a, "t1").len(), 1);
        assert_eq!(engine.conflict_aborts(), 0);
    }

    #[test]
    fn immediate_mode_declares_eager_write_intent() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN IMMEDIATE").unwrap();
        // A never touches t1, but IMMEDIATE intends to write everything.
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (20)").unwrap();
        let err = run(&mut a, "COMMIT").unwrap_err();
        assert!(err.message.contains(SERIALIZATION_FAILURE));
        // DEFERRED intent is lazy: the same schedule commits.
        let mut c = engine.session();
        run(&mut c, "BEGIN DEFERRED").unwrap();
        run(&mut c, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (21)").unwrap();
        run(&mut c, "COMMIT").unwrap();
    }

    #[test]
    fn rollback_discards_and_savepoints_work_in_sessions() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "SAVEPOINT sp1").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (3)").unwrap();
        run(&mut a, "ROLLBACK TO sp1").unwrap();
        run(&mut a, "RELEASE SAVEPOINT sp1").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        run(&mut a, "ROLLBACK").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1, "rollback discarded the insert");
        // Transaction-control errors match the single-connection wording.
        assert!(run(&mut a, "ROLLBACK").is_err());
        assert!(run(&mut a, "SAVEPOINT s").is_err());
        run(&mut a, "COMMIT").unwrap(); // autocommit no-op
    }

    #[test]
    fn dropped_session_rolls_its_transaction_back() {
        let engine = engine_with_table(&[]);
        {
            let mut a = engine.session();
            run(&mut a, "BEGIN").unwrap();
            run(&mut a, "INSERT INTO t0 (c0) VALUES (7)").unwrap();
            assert_eq!(engine.open_transactions(), 1);
        }
        assert_eq!(engine.open_transactions(), 0);
        let b = engine.session();
        assert_eq!(rows(&b, "t0").len(), 1);
    }

    #[test]
    fn dirty_read_fault_leaks_uncommitted_writes_into_snapshots() {
        let engine = engine_with_table(&["iso_dirty_read"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (666)").unwrap();
        run(&mut b, "BEGIN").unwrap();
        // B's snapshot sees A's uncommitted row.
        assert_eq!(rows(&b, "t0").len(), 2, "dirty read");
        run(&mut a, "ROLLBACK").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (1)").unwrap();
        run(&mut b, "COMMIT").unwrap();
        // Sound semantics would leave t0 with one row — and they do here
        // (B never wrote t0, so the dirty copy was not installed), but B's
        // reads were poisoned, which is what the isolation oracle flags.
        assert_eq!(rows(&a, "t0").len(), 1);
    }

    #[test]
    fn lost_update_fault_lets_the_second_committer_clobber() {
        let engine = engine_with_table(&["iso_lost_update"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        // Sound first-committer-wins would abort B; the fault installs B's
        // snapshot-based t0, losing A's row.
        let remaining: Vec<i64> = rows(&a, "t0")
            .into_iter()
            .map(|r| match r[0] {
                sql_ast::Value::Integer(i) => i,
                _ => panic!("integer column"),
            })
            .collect();
        assert_eq!(remaining, vec![1, 20], "A's committed insert was lost");
    }

    #[test]
    fn nonrepeatable_read_fault_refreshes_unwritten_tables() {
        let engine = engine_with_table(&["iso_nonrepeatable_read"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1);
        run(&mut b, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        // Sound snapshot reads would still see one row; the fault re-reads
        // the committed state.
        assert_eq!(rows(&a, "t0").len(), 2, "non-repeatable read");
        // Once A writes t0, its own version pins.
        run(&mut a, "DELETE FROM t0").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (3)").unwrap();
        assert_eq!(rows(&a, "t0").len(), 0);
        run(&mut a, "ROLLBACK").unwrap();
    }

    #[test]
    fn single_session_txn_faults_keep_their_observables() {
        // Lost rollback: the writes land despite ROLLBACK.
        let engine = engine_with_table(&["txn_lost_rollback"]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "ROLLBACK").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2, "fault: rollback lost");

        // Phantom commit: the writes vanish despite COMMIT.
        let engine = engine_with_table(&["txn_phantom_commit"]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1, "fault: commit turned into abort");
    }

    #[test]
    fn engine_clone_is_deep() {
        let engine = engine_with_table(&[]);
        let copy = engine.clone();
        let mut a = engine.session();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        let b = copy.session();
        assert_eq!(rows(&b, "t0").len(), 1, "clone does not share storage");
    }
}
