//! Concurrent sessions over one shared storage core.
//!
//! [`Engine`] splits the monolithic [`Database`] into a **shared committed
//! state** and per-session handles ([`Engine::session`]). Autocommit
//! statements run directly against the committed state; `BEGIN` gives the
//! session a private transaction built from the PR 3 machinery plus two new
//! concurrency guarantees:
//!
//! * **Begin-time snapshot reads** — `BEGIN` clones the committed state
//!   into a private workspace; every statement of the transaction executes
//!   against that workspace (its own writes included), so concurrent
//!   commits by other sessions are invisible until the next transaction.
//!   `SAVEPOINT`/`ROLLBACK TO`/`RELEASE` run on the workspace's own frame
//!   stack, inheriting the single-connection semantics (and injected
//!   transaction faults) verbatim.
//! * **First-committer-wins conflict detection** — the engine tracks a
//!   per-table commit clock. `COMMIT` validates the session's write intent
//!   against every commit installed since its snapshot; a conflict aborts
//!   the transaction with a *serialization failure* error — a new,
//!   learnable statement outcome (the platform sees only the error text,
//!   preserving the SQL-text-only contract). `BEGIN IMMEDIATE` declares
//!   eager write intent on every table, so its commit conflicts with any
//!   concurrent commit; `BEGIN [DEFERRED]` accumulates intent lazily.
//!
//! Three injected **isolation faults** live here (see [`crate::faults`]):
//!
//! * `iso_dirty_read` — the begin-time snapshot overlays other sessions'
//!   *uncommitted* workspace writes;
//! * `iso_lost_update` — `COMMIT` skips first-committer-wins validation,
//!   so the later committer silently clobbers concurrent committed writes;
//! * `iso_nonrepeatable_read` — tables the session has not itself written
//!   are refreshed from the latest committed state before every statement
//!   (read-committed visibility masquerading as snapshot isolation).
//!
//! With a single session and no concurrent commits, every path below
//! reduces to the PR 3 observables: snapshots equal the live state, commits
//! never conflict, and the `txn_*` faults keep their single-connection
//! behaviour (the workspace carries the same [`FaultConfig`], and a lost
//! rollback installs its writes exactly like the undo-log variant did).
//!
//! [`FaultConfig`]: crate::faults::FaultConfig

use crate::config::EngineConfig;
use crate::error::{EngineError, EngineResult};
use crate::exec::{ExecutionMode, StatementResult};
use crate::storage::{Database, ResultSet};
use sql_ast::{BeginMode, Select, Statement};
use std::cell::{Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// The marker substring carried by every commit-time conflict error. The
/// testing platform (which sees only SQL text and error strings) recognises
/// conflict aborts by it.
pub const SERIALIZATION_FAILURE: &str = "serialization failure";

/// One open transaction: the session's private snapshot workspace plus the
/// bookkeeping first-committer-wins validation needs.
struct OpenTxn {
    /// Clone of the committed state as of `BEGIN` (plus fault overlays),
    /// with one PR 3 frame pushed so savepoints work unchanged.
    workspace: Database,
    /// Commit clock at `BEGIN`; commits installed after it conflict.
    begin_clock: u64,
    /// Catalog version at `BEGIN` (DDL transactions conflict coarsely).
    begin_catalog: u64,
    /// Eager write intent (`BEGIN IMMEDIATE`): validated like writes but
    /// never installed.
    intent: BTreeSet<String>,
    /// Tables actually written (lowercased); validated *and* installed.
    writes: BTreeSet<String>,
    /// Whether the transaction ran DDL (catalog installed wholesale).
    ddl: bool,
}

/// The shared core behind an [`Engine`]: the committed database plus the
/// commit clock, per-table versions and the open-transaction registry.
struct EngineCore {
    committed: Database,
    /// Bumped once per installed commit (including autocommit writes).
    clock: u64,
    /// Per-table (lowercased) clock value of the last installed commit.
    versions: BTreeMap<String, u64>,
    /// Clock value of the last committed catalog change.
    catalog_version: u64,
    /// Open transactions, keyed by session id (deterministic iteration).
    open: BTreeMap<u64, OpenTxn>,
    next_session: u64,
    conflict_aborts: u64,
}

/// Tables a statement writes (lowercased storage keys), used for both lazy
/// write intent and autocommit version bumps. Write intent is declared by
/// statement shape — an `UPDATE` matching zero rows still conflicts, which
/// is deterministic and strictly conservative.
fn write_targets(stmt: &Statement, db: &Database) -> Vec<String> {
    let key = |name: &str| crate::catalog::lowercase_key(name).into_owned();
    match stmt {
        Statement::Insert(i) => vec![key(&i.table)],
        Statement::Update(u) => vec![key(&u.table)],
        Statement::Delete(d) => vec![key(&d.table)],
        Statement::CreateTable(c) => vec![key(&c.name)],
        Statement::Drop {
            kind: sql_ast::DropKind::Table,
            name,
            ..
        } => vec![key(name)],
        Statement::Analyze(Some(t)) => vec![key(t)],
        Statement::Analyze(None) => db.data.keys().cloned().collect(),
        _ => Vec::new(),
    }
}

/// `iso_nonrepeatable_read`: refresh every table the transaction has not
/// itself written from the latest committed state.
fn refresh_unwritten(committed: &Database, txn: &mut OpenTxn) {
    let tables: Vec<String> = txn
        .workspace
        .data
        .keys()
        .filter(|t| !txn.writes.contains(*t))
        .cloned()
        .collect();
    for t in tables {
        if let Some(rows) = committed.data.get(&t) {
            txn.workspace.data.insert(t.clone(), rows.clone());
            match committed.stats.get(&t) {
                Some(stats) => {
                    txn.workspace.stats.insert(t, stats.clone());
                }
                None => {
                    txn.workspace.stats.remove(&t);
                }
            }
        }
    }
}

impl EngineCore {
    fn merge_workspace_coverage(&mut self, txn: &OpenTxn) {
        let cov = txn.workspace.coverage_snapshot();
        self.committed.record_coverage(|c| c.merge(&cov));
    }

    /// Installs a transaction's written tables (and, for DDL, its catalog)
    /// into the committed state, bumping the commit clock.
    fn install(&mut self, txn: &OpenTxn) {
        self.clock += 1;
        if txn.ddl {
            self.committed.catalog = txn.workspace.catalog.clone();
            self.catalog_version = self.clock;
        }
        for t in &txn.writes {
            match txn.workspace.data.get(t) {
                Some(rows) => {
                    self.committed.data.insert(t.clone(), rows.clone());
                }
                None => {
                    self.committed.data.remove(t);
                }
            }
            match txn.workspace.stats.get(t) {
                Some(stats) => {
                    self.committed.stats.insert(t.clone(), stats.clone());
                }
                None => {
                    self.committed.stats.remove(t);
                }
            }
            self.versions.insert(t.clone(), self.clock);
        }
    }

    fn begin_session(&mut self, id: u64, mode: BeginMode) -> EngineResult<StatementResult> {
        if self.open.contains_key(&id) {
            return Err(EngineError::runtime(
                "cannot start a transaction within a transaction",
            ));
        }
        self.committed
            .record_coverage(|cov| cov.statement("STMT_BEGIN"));
        let mut workspace = self.committed.clone();
        if self.committed.config.faults.iso_dirty_read {
            // Injected fault: the snapshot overlays the *uncommitted*
            // workspace writes of every other open session.
            for (other_id, other) in &self.open {
                if *other_id == id {
                    continue;
                }
                for t in &other.writes {
                    match other.workspace.data.get(t) {
                        Some(rows) => {
                            workspace.data.insert(t.clone(), rows.clone());
                        }
                        None => {
                            workspace.data.remove(t);
                        }
                    }
                }
            }
        }
        workspace.txn_begin()?;
        let intent: BTreeSet<String> = if mode.is_immediate() {
            workspace.data.keys().cloned().collect()
        } else {
            BTreeSet::new()
        };
        self.open.insert(
            id,
            OpenTxn {
                workspace,
                begin_clock: self.clock,
                begin_catalog: self.catalog_version,
                intent,
                writes: BTreeSet::new(),
                ddl: false,
            },
        );
        Ok(StatementResult::Ok)
    }

    fn commit_session(&mut self, id: u64) -> EngineResult<StatementResult> {
        let Some(mut txn) = self.open.remove(&id) else {
            // Autocommit COMMIT is the usual no-op.
            return self.committed.execute(&Statement::Commit);
        };
        self.committed
            .record_coverage(|cov| cov.statement("STMT_COMMIT"));
        if !self.committed.config.faults.iso_lost_update {
            // First-committer-wins validation over writes and eager intent.
            let conflict: Option<String> = txn
                .writes
                .iter()
                .chain(txn.intent.iter())
                .find(|t| self.versions.get(*t).copied().unwrap_or(0) > txn.begin_clock)
                .cloned();
            let catalog_conflict = txn.ddl && self.catalog_version > txn.begin_catalog;
            if conflict.is_some() || catalog_conflict {
                // The transaction is rewound: its workspace is discarded and
                // the session returns to autocommit.
                self.conflict_aborts += 1;
                self.merge_workspace_coverage(&txn);
                let what = conflict.unwrap_or_else(|| "the catalog".to_string());
                return Err(EngineError::runtime(format!(
                    "{SERIALIZATION_FAILURE}: concurrent update to {what} (first committer wins)"
                )));
            }
        }
        // Close the workspace's frame stack through its own machinery so
        // the single-connection faults (e.g. `txn_phantom_commit`, which
        // reverts the workspace before install) keep their observables.
        txn.workspace.txn_commit()?;
        self.merge_workspace_coverage(&txn);
        self.install(&txn);
        Ok(StatementResult::Ok)
    }

    fn rollback_session(&mut self, id: u64) -> EngineResult<StatementResult> {
        let Some(mut txn) = self.open.remove(&id) else {
            // Matches the single-connection "no transaction is active".
            return self.committed.execute(&Statement::Rollback);
        };
        self.committed
            .record_coverage(|cov| cov.statement("STMT_ROLLBACK"));
        let lost = self.committed.config.faults.txn_lost_rollback;
        txn.workspace.txn_rollback()?;
        self.merge_workspace_coverage(&txn);
        if lost {
            // Injected fault: the rollback is lost — the writes land as if
            // committed (no conflict validation; the undo log is gone).
            self.install(&txn);
        }
        Ok(StatementResult::Ok)
    }

    fn execute_session(&mut self, id: u64, stmt: &Statement) -> EngineResult<StatementResult> {
        match stmt {
            Statement::Begin(mode) => self.begin_session(id, *mode),
            Statement::Commit => self.commit_session(id),
            Statement::Rollback => self.rollback_session(id),
            Statement::Savepoint(_) | Statement::RollbackTo(_) | Statement::ReleaseSavepoint(_) => {
                match self.open.get_mut(&id) {
                    // Inside a transaction the workspace's own frame stack
                    // implements savepoints (PR 3 semantics and faults).
                    Some(txn) => txn.workspace.execute(stmt),
                    // Outside one, the committed database produces the
                    // canonical "outside a transaction" errors.
                    None => self.committed.execute(stmt),
                }
            }
            other => match self.open.get_mut(&id) {
                Some(txn) => {
                    if self.committed.config.faults.iso_nonrepeatable_read {
                        refresh_unwritten(&self.committed, txn);
                    }
                    let result = txn.workspace.execute(other);
                    if result.is_ok() {
                        for t in write_targets(other, &txn.workspace) {
                            txn.writes.insert(t);
                        }
                        if other.is_ddl() {
                            txn.ddl = true;
                        }
                    }
                    result
                }
                None => {
                    let result = self.committed.execute(other);
                    if result.is_ok() {
                        let targets = write_targets(other, &self.committed);
                        if !targets.is_empty() || other.is_ddl() {
                            self.clock += 1;
                            for t in targets {
                                self.versions.insert(t, self.clock);
                            }
                            if other.is_ddl() {
                                self.catalog_version = self.clock;
                            }
                        }
                    }
                    result
                }
            },
        }
    }

    fn query_session(
        &mut self,
        id: u64,
        select: &Select,
        mode: ExecutionMode,
    ) -> EngineResult<ResultSet> {
        match self.open.get_mut(&id) {
            Some(txn) => {
                if self.committed.config.faults.iso_nonrepeatable_read {
                    refresh_unwritten(&self.committed, txn);
                }
                txn.workspace.query(select, mode)
            }
            None => self.committed.query(select, mode),
        }
    }
}

/// A shared storage core serving any number of concurrent sessions.
///
/// # Examples
///
/// ```
/// use sql_engine::{Engine, EngineConfig};
/// use sql_parser::parse_statement;
///
/// let engine = Engine::new(EngineConfig::dynamic());
/// let mut alice = engine.session();
/// let mut bob = engine.session();
/// let run = |s: &mut sql_engine::EngineSession, sql: &str| {
///     s.execute(&parse_statement(sql).unwrap()).map(|_| ())
/// };
/// run(&mut alice, "CREATE TABLE t0 (c0 INTEGER)").unwrap();
/// run(&mut alice, "BEGIN").unwrap();
/// run(&mut alice, "INSERT INTO t0 (c0) VALUES (1)").unwrap();
/// // Bob's snapshot cannot see Alice's uncommitted insert.
/// run(&mut bob, "BEGIN").unwrap();
/// let rs = bob.query(&match parse_statement("SELECT * FROM t0").unwrap() {
///     sql_ast::Statement::Select(q) => *q,
///     _ => unreachable!(),
/// }, sql_engine::ExecutionMode::Optimized).unwrap();
/// assert_eq!(rs.row_count(), 0);
/// ```
pub struct Engine {
    core: Rc<RefCell<EngineCore>>,
}

impl Engine {
    /// Creates an engine with an empty committed database.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::from_database(Database::new(config))
    }

    /// Wraps an existing database as the committed state. The database must
    /// not have an open single-connection transaction (a later session
    /// `BEGIN` would fail).
    pub fn from_database(committed: Database) -> Engine {
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                committed,
                clock: 0,
                versions: BTreeMap::new(),
                catalog_version: 0,
                open: BTreeMap::new(),
                next_session: 0,
                conflict_aborts: 0,
            })),
        }
    }

    /// Opens a new session over the shared core.
    pub fn session(&self) -> EngineSession {
        let mut core = self.core.borrow_mut();
        let id = core.next_session;
        core.next_session += 1;
        EngineSession {
            core: Rc::clone(&self.core),
            id,
        }
    }

    /// The committed database (for inspection: coverage, catalog, rows).
    /// Sessions' uncommitted workspaces are not visible here.
    pub fn committed(&self) -> Ref<'_, Database> {
        Ref::map(self.core.borrow(), |core| &core.committed)
    }

    /// Number of commit attempts rejected by first-committer-wins
    /// validation since the engine was created.
    pub fn conflict_aborts(&self) -> u64 {
        self.core.borrow().conflict_aborts
    }

    /// Number of sessions currently holding an open transaction.
    pub fn open_transactions(&self) -> usize {
        self.core.borrow().open.len()
    }

    /// The engine configuration (shared by every session's workspace).
    pub fn config(&self) -> EngineConfig {
        self.core.borrow().committed.config.clone()
    }
}

impl Clone for Engine {
    /// Deep-clones the committed state and bookkeeping into an independent
    /// core. Open transactions are **not** carried over (their session
    /// handles would dangle); clones are cold paths — fleet setup and
    /// ground-truth bisection — which always start from a quiescent engine.
    fn clone(&self) -> Engine {
        let core = self.core.borrow();
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                committed: core.committed.clone(),
                clock: core.clock,
                versions: core.versions.clone(),
                catalog_version: core.catalog_version,
                open: BTreeMap::new(),
                next_session: core.next_session,
                conflict_aborts: core.conflict_aborts,
            })),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.core.borrow();
        write!(
            f,
            "Engine(clock {}, {} open txns)",
            core.clock,
            core.open.len()
        )
    }
}

/// One connection's handle onto a shared [`Engine`].
///
/// Outside a transaction, statements execute directly against the committed
/// state (autocommit). `BEGIN` opens a snapshot-isolated transaction; see
/// the module documentation for the semantics. Dropping a session rolls its
/// open transaction back.
pub struct EngineSession {
    core: Rc<RefCell<EngineCore>>,
    id: u64,
}

impl EngineSession {
    /// Executes one statement in this session.
    ///
    /// # Errors
    ///
    /// Engine errors as usual; additionally, `COMMIT` fails with a
    /// `serialization failure` runtime error when first-committer-wins
    /// validation rejects the transaction (which is then rolled back).
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<StatementResult> {
        self.core.borrow_mut().execute_session(self.id, stmt)
    }

    /// Runs a query in this session: against the transaction's snapshot
    /// workspace when one is open, against the committed state otherwise.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn query(&self, select: &Select, mode: ExecutionMode) -> EngineResult<ResultSet> {
        self.core.borrow_mut().query_session(self.id, select, mode)
    }

    /// Whether this session has an open transaction.
    pub fn in_transaction(&self) -> bool {
        self.core.borrow().open.contains_key(&self.id)
    }

    /// Records coverage on the shared committed tracker (workspace coverage
    /// is merged into it when a transaction closes).
    pub fn record_coverage(&self, f: impl FnOnce(&mut crate::coverage::CoverageTracker)) {
        self.core.borrow().committed.record_coverage(f);
    }
}

impl Drop for EngineSession {
    fn drop(&mut self) {
        // A dropped session rolls back: its workspace (and any uncommitted
        // writes) simply disappears from the registry.
        if let Ok(mut core) = self.core.try_borrow_mut() {
            if let Some(txn) = core.open.remove(&self.id) {
                core.merge_workspace_coverage(&txn);
            }
        }
    }
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineSession#{}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_parser::parse_statement;

    fn run(session: &mut EngineSession, sql: &str) -> EngineResult<StatementResult> {
        session.execute(&parse_statement(sql).expect("test SQL parses"))
    }

    fn rows(session: &EngineSession, table: &str) -> Vec<Vec<sql_ast::Value>> {
        let stmt = parse_statement(&format!("SELECT * FROM {table}")).unwrap();
        let Statement::Select(q) = stmt else {
            unreachable!()
        };
        session.query(&q, ExecutionMode::Optimized).unwrap().rows
    }

    fn engine_with_table(faults: &[&str]) -> Engine {
        let engine = Engine::new(EngineConfig::dynamic().with_faults(faults));
        let mut setup = engine.session();
        run(&mut setup, "CREATE TABLE t0 (c0 INTEGER)").unwrap();
        run(&mut setup, "CREATE TABLE t1 (c0 INTEGER)").unwrap();
        run(&mut setup, "INSERT INTO t0 (c0) VALUES (1)").unwrap();
        engine
    }

    #[test]
    fn snapshot_isolation_hides_concurrent_writes() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        // A's snapshot predates B's autocommit insert.
        assert_eq!(rows(&a, "t0").len(), 1);
        // A's own writes are visible to A but not to B.
        run(&mut a, "INSERT INTO t1 (c0) VALUES (9)").unwrap();
        assert_eq!(rows(&a, "t1").len(), 1);
        assert_eq!(rows(&b, "t1").len(), 0);
        run(&mut a, "COMMIT").unwrap();
        assert_eq!(rows(&b, "t1").len(), 1);
        assert_eq!(rows(&b, "t0").len(), 2);
    }

    #[test]
    fn first_committer_wins_aborts_the_second_writer() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        let err = run(&mut b, "COMMIT").unwrap_err();
        assert!(
            err.message.contains(SERIALIZATION_FAILURE),
            "unexpected error: {err}"
        );
        // B was rewound: only A's row landed, and B is back in autocommit.
        assert!(!b.in_transaction());
        assert_eq!(rows(&b, "t0").len(), 2);
        assert_eq!(engine.conflict_aborts(), 1);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        assert_eq!(rows(&a, "t1").len(), 1);
        assert_eq!(engine.conflict_aborts(), 0);
    }

    #[test]
    fn immediate_mode_declares_eager_write_intent() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN IMMEDIATE").unwrap();
        // A never touches t1, but IMMEDIATE intends to write everything.
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (20)").unwrap();
        let err = run(&mut a, "COMMIT").unwrap_err();
        assert!(err.message.contains(SERIALIZATION_FAILURE));
        // DEFERRED intent is lazy: the same schedule commits.
        let mut c = engine.session();
        run(&mut c, "BEGIN DEFERRED").unwrap();
        run(&mut c, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (21)").unwrap();
        run(&mut c, "COMMIT").unwrap();
    }

    #[test]
    fn rollback_discards_and_savepoints_work_in_sessions() {
        let engine = engine_with_table(&[]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "SAVEPOINT sp1").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (3)").unwrap();
        run(&mut a, "ROLLBACK TO sp1").unwrap();
        run(&mut a, "RELEASE SAVEPOINT sp1").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        run(&mut a, "ROLLBACK").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1, "rollback discarded the insert");
        // Transaction-control errors match the single-connection wording.
        assert!(run(&mut a, "ROLLBACK").is_err());
        assert!(run(&mut a, "SAVEPOINT s").is_err());
        run(&mut a, "COMMIT").unwrap(); // autocommit no-op
    }

    #[test]
    fn dropped_session_rolls_its_transaction_back() {
        let engine = engine_with_table(&[]);
        {
            let mut a = engine.session();
            run(&mut a, "BEGIN").unwrap();
            run(&mut a, "INSERT INTO t0 (c0) VALUES (7)").unwrap();
            assert_eq!(engine.open_transactions(), 1);
        }
        assert_eq!(engine.open_transactions(), 0);
        let b = engine.session();
        assert_eq!(rows(&b, "t0").len(), 1);
    }

    #[test]
    fn dirty_read_fault_leaks_uncommitted_writes_into_snapshots() {
        let engine = engine_with_table(&["iso_dirty_read"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (666)").unwrap();
        run(&mut b, "BEGIN").unwrap();
        // B's snapshot sees A's uncommitted row.
        assert_eq!(rows(&b, "t0").len(), 2, "dirty read");
        run(&mut a, "ROLLBACK").unwrap();
        run(&mut b, "INSERT INTO t1 (c0) VALUES (1)").unwrap();
        run(&mut b, "COMMIT").unwrap();
        // Sound semantics would leave t0 with one row — and they do here
        // (B never wrote t0, so the dirty copy was not installed), but B's
        // reads were poisoned, which is what the isolation oracle flags.
        assert_eq!(rows(&a, "t0").len(), 1);
    }

    #[test]
    fn lost_update_fault_lets_the_second_committer_clobber() {
        let engine = engine_with_table(&["iso_lost_update"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut b, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (10)").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (20)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        run(&mut b, "COMMIT").unwrap();
        // Sound first-committer-wins would abort B; the fault installs B's
        // snapshot-based t0, losing A's row.
        let remaining: Vec<i64> = rows(&a, "t0")
            .into_iter()
            .map(|r| match r[0] {
                sql_ast::Value::Integer(i) => i,
                _ => panic!("integer column"),
            })
            .collect();
        assert_eq!(remaining, vec![1, 20], "A's committed insert was lost");
    }

    #[test]
    fn nonrepeatable_read_fault_refreshes_unwritten_tables() {
        let engine = engine_with_table(&["iso_nonrepeatable_read"]);
        let mut a = engine.session();
        let mut b = engine.session();
        run(&mut a, "BEGIN").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1);
        run(&mut b, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        // Sound snapshot reads would still see one row; the fault re-reads
        // the committed state.
        assert_eq!(rows(&a, "t0").len(), 2, "non-repeatable read");
        // Once A writes t0, its own version pins.
        run(&mut a, "DELETE FROM t0").unwrap();
        run(&mut b, "INSERT INTO t0 (c0) VALUES (3)").unwrap();
        assert_eq!(rows(&a, "t0").len(), 0);
        run(&mut a, "ROLLBACK").unwrap();
    }

    #[test]
    fn single_session_txn_faults_keep_their_observables() {
        // Lost rollback: the writes land despite ROLLBACK.
        let engine = engine_with_table(&["txn_lost_rollback"]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "ROLLBACK").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2, "fault: rollback lost");

        // Phantom commit: the writes vanish despite COMMIT.
        let engine = engine_with_table(&["txn_phantom_commit"]);
        let mut a = engine.session();
        run(&mut a, "BEGIN").unwrap();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        run(&mut a, "COMMIT").unwrap();
        assert_eq!(rows(&a, "t0").len(), 1, "fault: commit turned into abort");
    }

    #[test]
    fn engine_clone_is_deep() {
        let engine = engine_with_table(&[]);
        let copy = engine.clone();
        let mut a = engine.session();
        run(&mut a, "INSERT INTO t0 (c0) VALUES (2)").unwrap();
        assert_eq!(rows(&a, "t0").len(), 2);
        let b = copy.session();
        assert_eq!(rows(&b, "t0").len(), 1, "clone does not share storage");
    }
}
