//! Closure-compiled expression evaluation.
//!
//! The tree-walking [`Evaluator`] re-interprets the AST for every row:
//! every column reference re-runs case-insensitive name resolution, every
//! function call re-validates its arity, every aggregate reference
//! re-renders its SQL key, and every node pays a `match` dispatch. This
//! module performs that work **once per statement** instead: an [`Expr`] is
//! compiled into a tree of reusable closures
//! (`Fn(&Evaluator, &Scope) -> EngineResult<Value>`) with
//!
//! * column references resolved to flat row offsets at compile time
//!   (ambiguity and missing-column errors become pre-built constant
//!   results),
//! * scalar-function arity validated at compile time and evaluation
//!   entering [`crate::functions`] through the pre-checked
//!   [`eval_function_unchecked`] door,
//! * aggregate lookup keys rendered once instead of per row, and
//! * constant subtrees memoized after their first evaluation.
//!
//! Compiled plans are cached per [`Database`] keyed by a 128-bit structural
//! fingerprint of `(execution mode, relation bindings, expression)`, so
//! re-executing a statement — which the TLP and NoREC oracles do
//! constantly — reuses the plan. The cache additionally shares the plan of
//! a predicate `p` across the oracle partition shapes `NOT p`, `p IS NULL`
//! and `p IS TRUE`, which is exactly the set of derived queries the oracles
//! issue per check.
//!
//! **Parity contract.** Compiled evaluation must be observationally
//! identical to the tree walker: same values, same errors (kind and
//! message), and the same final coverage sets. Closures therefore mirror
//! the tree walker's structure — including its evaluation order, error
//! short-circuiting and coverage recording points — and delegate all value
//! semantics (comparison, coercion, casts, faults) to the same [`Evaluator`]
//! helpers. The differential property suite and the fleet-level
//! compiled↔tree parity test enforce this contract.

use crate::config::EvalStrategy;
use crate::error::{EngineError, EngineResult};
use crate::eval::{like_match, Evaluator, RelationBinding, Scope};
use crate::exec::ExecutionMode;
use crate::functions::{arity_error, eval_function_unchecked, handles_nulls};
use crate::storage::Database;
use sql_ast::{BinaryOp, ColumnRef, DataType, Expr, Fingerprint128, TruthValue, UnaryOp, Value};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// A compiled evaluation closure. `Send + Sync` so plans can live in the
/// per-database cache without making [`Database`] thread-hostile.
type EvalFn = Arc<dyn Fn(&Evaluator<'_>, &Scope<'_>) -> EngineResult<Value> + Send + Sync>;

/// A compiled expression: evaluate against rows without re-walking the AST.
#[derive(Clone)]
pub struct CompiledExpr {
    run: EvalFn,
}

impl CompiledExpr {
    /// Evaluates the compiled expression for one row.
    ///
    /// # Errors
    ///
    /// Exactly the errors the tree-walking [`Evaluator::eval`] would return
    /// for the same expression, row and configuration.
    pub fn eval(&self, evaluator: &Evaluator<'_>, scope: &Scope<'_>) -> EngineResult<Value> {
        (self.run)(evaluator, scope)
    }

    /// Evaluates to a three-valued truth value, applying the typing
    /// discipline's rules for boolean contexts.
    ///
    /// # Errors
    ///
    /// As [`Evaluator::eval_truth`].
    pub fn eval_truth(
        &self,
        evaluator: &Evaluator<'_>,
        scope: &Scope<'_>,
    ) -> EngineResult<TruthValue> {
        evaluator.truthiness(&self.eval(evaluator, scope)?)
    }
}

impl std::fmt::Debug for CompiledExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompiledExpr")
    }
}

// ------------------------------------------------------------ plan cache ----

/// Entries kept before the cache is wiped. Campaigns reset their database
/// (and with it this cache) between test databases; the cap only bounds
/// pathological single-database runs, and wiping wholesale keeps eviction
/// deterministic.
const PLAN_CACHE_CAP: usize = 1024;

/// Per-database cache of compiled plans, keyed by the 128-bit structural
/// fingerprint of `(mode, bindings, expression)`.
#[derive(Default)]
pub(crate) struct PlanCache {
    plans: std::rc::Rc<RefCell<BTreeMap<u128, EvalFn>>>,
}

impl PlanCache {
    fn get(&self, key: u128) -> Option<EvalFn> {
        self.plans.borrow().get(&key).cloned()
    }

    fn insert(&self, key: u128, plan: EvalFn) {
        let mut plans = self.plans.borrow_mut();
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
        }
        plans.insert(key, plan);
    }

    /// Drops every cached plan. Called when coverage accounting is reset:
    /// plans record operator/function coverage only on their first
    /// evaluation, so a plan that survived a coverage reset would never
    /// re-record its features.
    pub(crate) fn clear(&self) {
        self.plans.borrow_mut().clear();
    }
}

impl Clone for PlanCache {
    /// A cloned database **shares** the cache: with copy-on-write storage,
    /// clones are the hot `BEGIN` snapshot path, and a workspace that had
    /// to recompile every plan would pay per transaction what the cache
    /// exists to avoid. Sharing is sound because the cache key bakes in
    /// the typing discipline and fault bits alongside the structural
    /// fingerprint (see [`plan_key`]), and compiled plans read all
    /// remaining behaviour from the database they are evaluated against.
    fn clone(&self) -> PlanCache {
        PlanCache {
            plans: std::rc::Rc::clone(&self.plans),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlanCache({} plans)", self.plans.borrow().len())
    }
}

fn plan_key(db: &Database, mode: ExecutionMode, bindings: &[RelationBinding], expr: &Expr) -> u128 {
    let mut h = Fingerprint128::new();
    let mode_tag = match mode {
        ExecutionMode::Optimized => 1,
        ExecutionMode::Reference => 2,
    };
    let typing_tag = match db.config.typing {
        crate::config::TypingMode::Dynamic => 0u64,
        crate::config::TypingMode::Strict => 1,
    };
    // Typing and fault flags are keyed in so that mutating `db.config` in
    // place can never serve a plan (or a memoized constant result) compiled
    // under the previous configuration.
    h.write_word(mode_tag | (typing_tag << 2) | ((bindings.len() as u64) << 8));
    h.write_word(db.config.faults.bits());
    for b in bindings {
        h.write_str_words(&b.name);
        h.write_word(b.columns.len() as u64);
        for c in b.columns.iter() {
            h.write_str_words(c);
        }
    }
    expr.fingerprint_into(&mut h);
    h.finish()
}

// --------------------------------------------------------------- entry ----

/// Compiles an expression for evaluation against rows shaped by `bindings`.
///
/// `mode` selects which plan-cache partition the result lives in (several
/// injected faults read the mode at evaluation time, and memoized constant
/// results must therefore never cross modes). Plans are scope-polymorphic:
/// a column that does not bind locally compiles to a closure that defers to
/// the evaluation scope's parent chain at run time, so the same cached plan
/// serves both correlated (outer scope attached) and top-level evaluation —
/// this is what lets correlated-subquery sites compile **once per
/// statement** and hit the cache on every subsequent outer row instead of
/// falling back to the tree walker per row. Subquery-*containing*
/// expressions cache too: the structural fingerprint descends into subquery
/// bodies ([`sql_ast::Select::fingerprint_into`]), and the subquery nodes
/// themselves compile to closures that re-execute the query per evaluation
/// — structure lives in the cached plan, data is read at run time.
pub fn compile_expr(
    db: &Database,
    mode: ExecutionMode,
    bindings: &[RelationBinding],
    expr: &Expr,
) -> CompiledExpr {
    // Single-node expressions (plain column projections, literals) compile
    // to one closure; going through the cache would cost more than the
    // compile.
    if matches!(expr, Expr::Literal(_) | Expr::Column(_)) {
        let env = CompileEnv { bindings };
        return CompiledExpr {
            run: compile_node(expr, &env).into_root(),
        };
    }
    let key = plan_key(db, mode, bindings, expr);
    if let Some(run) = db.plan_cache().get(key) {
        return CompiledExpr { run };
    }
    // Oracle partition sharing: `NOT p`, `p IS NULL` and `p IS TRUE` — the
    // exact derived-query shapes TLP and NoREC issue — wrap the *cached*
    // plan of `p` instead of recompiling it.
    let run = match expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: inner,
        } => unary_fn(UnaryOp::Not, compile_expr(db, mode, bindings, inner).run),
        Expr::IsNull {
            expr: inner,
            negated,
        } => is_null_fn(compile_expr(db, mode, bindings, inner).run, *negated),
        Expr::IsBool {
            expr: inner,
            target,
            negated,
        } => is_bool_fn(
            compile_expr(db, mode, bindings, inner).run,
            *target,
            *negated,
        ),
        _ => {
            let env = CompileEnv { bindings };
            compile_node(expr, &env).into_root()
        }
    };
    db.plan_cache().insert(key, run.clone());
    CompiledExpr { run }
}

/// A per-site expression plan: the compiled closure tree by default, or the
/// borrowed AST re-walked by the tree evaluator when the engine is
/// configured as the reference arm.
#[derive(Debug)]
pub enum SiteExpr<'e> {
    /// Closure-compiled plan.
    Compiled(CompiledExpr),
    /// Tree-walking reference evaluation.
    Tree(&'e Expr),
}

impl<'e> SiteExpr<'e> {
    /// Builds the plan for one evaluation site according to the database's
    /// configured [`EvalStrategy`].
    ///
    /// Sites with an outer scope belong to a correlated-subquery execution,
    /// which both evaluators re-run per *outer* row. Compiled plans are
    /// scope-polymorphic (non-local columns defer to the parent scope at
    /// evaluation time), so these sites go through [`compile_expr`] like any
    /// other: the first outer row pays the compile, every later row is a
    /// cache hit — the subquery body is effectively memoized once per
    /// statement instead of tree-walked per outer row.
    /// Subquery-*containing* expressions compile and cache as well (the
    /// structural fingerprint descends into subquery bodies); only the
    /// subquery node itself delegates to the tree walker, so its per-row
    /// re-execution stays identical on both evaluators while every sibling
    /// subtree runs compiled.
    pub fn new(
        db: &Database,
        mode: ExecutionMode,
        bindings: &[RelationBinding],
        expr: &'e Expr,
    ) -> SiteExpr<'e> {
        match db.config.eval {
            EvalStrategy::Compiled => SiteExpr::Compiled(compile_expr(db, mode, bindings, expr)),
            EvalStrategy::TreeWalk => SiteExpr::Tree(expr),
        }
    }

    /// Evaluates the site's expression for one row.
    ///
    /// # Errors
    ///
    /// As [`Evaluator::eval`].
    pub fn eval(&self, evaluator: &Evaluator<'_>, scope: &Scope<'_>) -> EngineResult<Value> {
        match self {
            SiteExpr::Compiled(c) => c.eval(evaluator, scope),
            SiteExpr::Tree(e) => evaluator.eval(e, scope),
        }
    }

    /// Evaluates the site's expression to a truth value.
    ///
    /// # Errors
    ///
    /// As [`Evaluator::eval_truth`].
    pub fn eval_truth(
        &self,
        evaluator: &Evaluator<'_>,
        scope: &Scope<'_>,
    ) -> EngineResult<TruthValue> {
        match self {
            SiteExpr::Compiled(c) => c.eval_truth(evaluator, scope),
            SiteExpr::Tree(e) => evaluator.eval_truth(e, scope),
        }
    }
}

// --------------------------------------------------------- compilation ----

struct CompileEnv<'a> {
    bindings: &'a [RelationBinding],
}

/// A compiled node plus what the compiler knows about it.
struct Node {
    f: EvalFn,
    /// Row- and scope-independent: safe to memoize after first evaluation.
    constant: bool,
    /// So cheap to re-run (literal clone) that memoization would only add
    /// overhead.
    trivial: bool,
}

impl Node {
    fn plain(f: EvalFn) -> Node {
        Node {
            f,
            constant: false,
            trivial: false,
        }
    }

    /// Extracts the closure for use inside a parent node. A constant child
    /// under a non-constant parent is wrapped in a lazy memo: the first
    /// evaluation runs the real closures (recording coverage exactly like
    /// the tree walker's first row would), later rows return the cached
    /// result. Coverage sets stay identical because they are sets — and a
    /// zero-row loop, where the tree walker records nothing, never triggers
    /// the memo either.
    fn into_child(self, parent_constant: bool) -> EvalFn {
        if self.constant && !self.trivial && !parent_constant {
            memoized(self.f)
        } else {
            self.f
        }
    }

    /// Extracts the closure for use as the plan root.
    fn into_root(self) -> EvalFn {
        if self.constant && !self.trivial {
            memoized(self.f)
        } else {
            self.f
        }
    }
}

fn memoized(f: EvalFn) -> EvalFn {
    let cell: OnceLock<EngineResult<Value>> = OnceLock::new();
    Arc::new(move |ev, scope| cell.get_or_init(|| f(ev, scope)).clone())
}

/// Once-per-plan coverage gate. The tree walker re-records the same
/// operator/function coverage point for every row — a `RefCell` borrow plus
/// a set lookup per node per row. Coverage is a *set*, so recording only on
/// a node's first actual evaluation produces the identical final set (a
/// node that is never evaluated — zero rows, untaken CASE branch — records
/// nothing on either path). [`Database::reset_coverage`] drops cached plans
/// so a reset never leaves a plan with a spent gate.
struct CoverageGate(AtomicBool);

impl CoverageGate {
    fn new() -> CoverageGate {
        CoverageGate(AtomicBool::new(false))
    }

    fn record(&self, ev: &Evaluator<'_>, f: impl FnOnce(&mut crate::coverage::CoverageTracker)) {
        if !self.0.load(AtomicOrdering::Relaxed) {
            self.0.store(true, AtomicOrdering::Relaxed);
            ev.db.record_coverage(f);
        }
    }
}

// Shared node constructors (used by both the general compiler and the
// root-level oracle-shape sharing in `compile_expr`). Each mirrors the
// corresponding arm of `Evaluator::eval`, including its coverage-recording
// point and evaluation order.

fn unary_fn(op: UnaryOp, child: EvalFn) -> EvalFn {
    let gate = CoverageGate::new();
    Arc::new(move |ev, scope| {
        let v = child(ev, scope)?;
        gate.record(ev, |cov| cov.operator(op.feature_name()));
        ev.eval_unary(op, v)
    })
}

fn is_null_fn(child: EvalFn, negated: bool) -> EvalFn {
    Arc::new(move |ev, scope| {
        let is_null = child(ev, scope)?.is_null();
        Ok(Value::Boolean(if negated { !is_null } else { is_null }))
    })
}

fn is_bool_fn(child: EvalFn, target: bool, negated: bool) -> EvalFn {
    Arc::new(move |ev, scope| {
        let v = child(ev, scope)?;
        let matches = match ev.truthiness(&v)? {
            TruthValue::True => target,
            TruthValue::False => !target,
            TruthValue::Unknown => false,
        };
        Ok(Value::Boolean(if negated { !matches } else { matches }))
    })
}

/// Compile-time column resolution against the site's bindings, mirroring
/// `Scope::resolve_local` (which only ever consults names, never row
/// values, so its outcome is fully determined at compile time).
enum Resolution {
    /// Resolves locally to this flat row offset.
    Offset(usize),
    /// Ambiguous unqualified reference: a constant error.
    Ambiguous,
    /// Not visible locally: defer to the parent scope at evaluation time.
    NotLocal,
}

/// Resolves a plain column to its flat row offset when it binds
/// unambiguously in the local bindings — the allocation-free projection
/// fast path (`SELECT c0, c1 ...` needs no closure at all).
pub(crate) fn local_column_offset(bindings: &[RelationBinding], col: &ColumnRef) -> Option<usize> {
    match resolve_column(bindings, col) {
        Resolution::Offset(i) => Some(i),
        Resolution::Ambiguous | Resolution::NotLocal => None,
    }
}

fn resolve_column(bindings: &[RelationBinding], col: &ColumnRef) -> Resolution {
    let mut offset = 0;
    let mut found: Option<usize> = None;
    for rel in bindings {
        if let Some(table) = &col.table {
            if !rel.name.eq_ignore_ascii_case(table) {
                offset += rel.columns.len();
                continue;
            }
        }
        if let Some(i) = rel
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(&col.column))
        {
            if found.is_some() && col.table.is_none() {
                return Resolution::Ambiguous;
            }
            found = Some(offset + i);
            if col.table.is_some() {
                return Resolution::Offset(offset + i);
            }
        }
        offset += rel.columns.len();
    }
    match found {
        Some(i) => Resolution::Offset(i),
        None => Resolution::NotLocal,
    }
}

fn compile_column(col: &ColumnRef, env: &CompileEnv<'_>) -> Node {
    match resolve_column(env.bindings, col) {
        Resolution::Offset(i) => Node::plain(Arc::new(move |_, scope| {
            Ok(scope.row.get(i).cloned().unwrap_or(Value::Null))
        })),
        Resolution::Ambiguous => {
            let err = EngineError::catalog(format!("ambiguous column reference '{}'", col.column));
            Node::plain(Arc::new(move |_, _| Err(err.clone())))
        }
        Resolution::NotLocal => {
            let col = col.clone();
            Node::plain(Arc::new(move |_, scope| match scope.parent {
                Some(parent) => parent.resolve(&col),
                None => Err(EngineError::catalog(format!("no such column: {col}"))),
            }))
        }
    }
}

#[allow(clippy::too_many_lines)]
fn compile_node(expr: &Expr, env: &CompileEnv<'_>) -> Node {
    match expr {
        Expr::Literal(v) => {
            let v = v.clone();
            Node {
                f: Arc::new(move |_, _| Ok(v.clone())),
                constant: true,
                trivial: true,
            }
        }
        Expr::Column(col) => compile_column(col, env),
        Expr::Unary { op, expr } => {
            let child = compile_node(expr, env);
            let constant = child.constant;
            Node {
                f: unary_fn(*op, child.into_child(constant)),
                constant,
                trivial: false,
            }
        }
        Expr::Binary { left, op, right } => {
            let l = compile_node(left, env);
            let r = compile_node(right, env);
            let constant = l.constant && r.constant;
            let lf = l.into_child(constant);
            let rf = r.into_child(constant);
            let op = *op;
            let gate = CoverageGate::new();
            let f: EvalFn = if matches!(op, BinaryOp::And | BinaryOp::Or) {
                Arc::new(move |ev, scope| {
                    gate.record(ev, |cov| cov.operator(op.feature_name()));
                    let lt = ev.truthiness(&lf(ev, scope)?)?;
                    let rt = ev.truthiness(&rf(ev, scope)?)?;
                    let t = if op == BinaryOp::And {
                        lt.and(rt)
                    } else {
                        lt.or(rt)
                    };
                    Ok(t.to_value())
                })
            } else {
                Arc::new(move |ev, scope| {
                    gate.record(ev, |cov| cov.operator(op.feature_name()));
                    let lv = lf(ev, scope)?;
                    let rv = rf(ev, scope)?;
                    ev.apply_binary(op, &lv, &rv)
                })
            };
            Node {
                f,
                constant,
                trivial: false,
            }
        }
        Expr::Function { func, args } => {
            let nodes: Vec<Node> = args.iter().map(|a| compile_node(a, env)).collect();
            let constant = nodes.iter().all(|n| n.constant);
            let fns: Vec<EvalFn> = nodes.into_iter().map(|n| n.into_child(constant)).collect();
            let func = *func;
            // Arity is validated here, once; the tree walker re-validates it
            // per row inside `eval_function`. The error still surfaces only
            // after argument evaluation, exactly as on the tree path.
            let bad_arity = (args.len() < func.min_args() || args.len() > func.max_args())
                .then(|| arity_error(func, args.len()));
            let propagates_null = !handles_nulls(func);
            let gate = CoverageGate::new();
            Node {
                f: Arc::new(move |ev, scope| {
                    let mut values = Vec::with_capacity(fns.len());
                    for f in &fns {
                        values.push(f(ev, scope)?);
                    }
                    gate.record(ev, |cov| cov.function(func.name()));
                    if let Some(err) = &bad_arity {
                        return Err(err.clone());
                    }
                    if propagates_null && values.iter().any(Value::is_null) {
                        return Ok(Value::Null);
                    }
                    eval_function_unchecked(
                        func,
                        &values,
                        ev.db.config.typing,
                        &ev.db.config.faults,
                    )
                }),
                constant,
                trivial: false,
            }
        }
        Expr::Aggregate { .. } => {
            // The lookup key — the SQL rendering of the aggregate — is
            // hoisted to compile time; the tree walker re-renders it per row.
            let key = expr.to_string();
            Node::plain(Arc::new(move |ev, _| {
                match ev.aggregates.and_then(|m| m.get(&key)) {
                    Some(v) => Ok(v.clone()),
                    None => Err(EngineError::runtime(
                        "aggregate function used outside aggregation context",
                    )),
                }
            }))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let operand_n = operand.as_deref().map(|o| compile_node(o, env));
            let branch_n: Vec<(Node, Node)> = branches
                .iter()
                .map(|b| (compile_node(&b.when, env), compile_node(&b.then, env)))
                .collect();
            let else_n = else_expr.as_deref().map(|e| compile_node(e, env));
            let constant = operand_n.as_ref().is_none_or(|n| n.constant)
                && branch_n.iter().all(|(w, t)| w.constant && t.constant)
                && else_n.as_ref().is_none_or(|n| n.constant);
            let operand_f = operand_n.map(|n| n.into_child(constant));
            let branch_f: Vec<(EvalFn, EvalFn)> = branch_n
                .into_iter()
                .map(|(w, t)| (w.into_child(constant), t.into_child(constant)))
                .collect();
            let else_f = else_n.map(|n| n.into_child(constant));
            Node {
                f: Arc::new(move |ev, scope| {
                    match &operand_f {
                        Some(opf) => {
                            let base = opf(ev, scope)?;
                            for (when_f, then_f) in &branch_f {
                                let when = when_f(ev, scope)?;
                                if ev.equals(&base, &when)? == TruthValue::True {
                                    return then_f(ev, scope);
                                }
                            }
                        }
                        None => {
                            for (when_f, then_f) in &branch_f {
                                if ev.truthiness(&when_f(ev, scope)?)?.is_true() {
                                    return then_f(ev, scope);
                                }
                            }
                        }
                    }
                    match &else_f {
                        Some(e) => e(ev, scope),
                        None => Ok(Value::Null),
                    }
                }),
                constant,
                trivial: false,
            }
        }
        Expr::Cast { expr, data_type } => {
            let child = compile_node(expr, env);
            let constant = child.constant;
            let f = child.into_child(constant);
            let data_type: DataType = *data_type;
            Node {
                f: Arc::new(move |ev, scope| ev.cast(f(ev, scope)?, data_type)),
                constant,
                trivial: false,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = compile_node(expr, env);
            let l = compile_node(low, env);
            let h = compile_node(high, env);
            let constant = e.constant && l.constant && h.constant;
            let ef = e.into_child(constant);
            let lf = l.into_child(constant);
            let hf = h.into_child(constant);
            let negated = *negated;
            Node {
                f: Arc::new(move |ev, scope| {
                    let v = ef(ev, scope)?;
                    let lo = lf(ev, scope)?;
                    let hi = hf(ev, scope)?;
                    let ge = ev.compare(&v, &lo)?.map(|o| o != Ordering::Less);
                    let le = ev.compare(&v, &hi)?.map(|o| o != Ordering::Greater);
                    let t = match (ge, le) {
                        (Some(false), _) | (_, Some(false)) => TruthValue::False,
                        (Some(true), Some(true)) => TruthValue::True,
                        _ => TruthValue::Unknown,
                    };
                    Ok(if negated { t.not() } else { t }.to_value())
                }),
                constant,
                trivial: false,
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let e = compile_node(expr, env);
            let items: Vec<Node> = list.iter().map(|i| compile_node(i, env)).collect();
            let constant = e.constant && items.iter().all(|n| n.constant);
            let ef = e.into_child(constant);
            let item_f: Vec<EvalFn> = items.into_iter().map(|n| n.into_child(constant)).collect();
            let negated = *negated;
            Node {
                f: Arc::new(move |ev, scope| {
                    let v = ef(ev, scope)?;
                    let mut saw_null = false;
                    let mut matched = false;
                    for item in &item_f {
                        let iv = item(ev, scope)?;
                        match ev.equals(&v, &iv)? {
                            TruthValue::True => {
                                matched = true;
                                break;
                            }
                            TruthValue::Unknown => saw_null = true,
                            TruthValue::False => {}
                        }
                    }
                    let t = if matched {
                        TruthValue::True
                    } else if saw_null {
                        TruthValue::Unknown
                    } else {
                        TruthValue::False
                    };
                    Ok(if negated { t.not() } else { t }.to_value())
                }),
                constant,
                trivial: false,
            }
        }
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            // Subquery nodes delegate to the tree walker verbatim: their
            // cost is the subquery re-execution (identical on both
            // evaluators), and delegation makes parity true by
            // construction instead of by a hand-mirrored copy. Sibling
            // subtrees still compile, and the whole plan is cacheable
            // because the structural fingerprint covers the subquery body —
            // the closure re-executes the query against the database's
            // *current* data on every evaluation.
            let expr = expr.clone();
            Node::plain(Arc::new(move |ev, scope| ev.eval(&expr, scope)))
        }
        Expr::IsNull { expr, negated } => {
            let child = compile_node(expr, env);
            let constant = child.constant;
            Node {
                f: is_null_fn(child.into_child(constant), *negated),
                constant,
                trivial: false,
            }
        }
        Expr::IsBool {
            expr,
            target,
            negated,
        } => {
            let child = compile_node(expr, env);
            let constant = child.constant;
            Node {
                f: is_bool_fn(child.into_child(constant), *target, *negated),
                constant,
                trivial: false,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let e = compile_node(expr, env);
            let p = compile_node(pattern, env);
            let constant = e.constant && p.constant;
            let ef = e.into_child(constant);
            let pf = p.into_child(constant);
            let negated = *negated;
            Node {
                f: Arc::new(move |ev, scope| {
                    let v = ef(ev, scope)?;
                    let pv = pf(ev, scope)?;
                    if v.is_null() || pv.is_null() {
                        return Ok(Value::Null);
                    }
                    let text = ev.to_text(&v)?;
                    let pat = ev.to_text(&pv)?;
                    let underscore_is_literal = ev.mode == ExecutionMode::Optimized
                        && ev.db.config.faults.bad_like_underscore;
                    let matched = like_match(&text, &pat, underscore_is_literal);
                    Ok(Value::Boolean(if negated { !matched } else { matched }))
                }),
                constant,
                trivial: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use std::sync::Arc as StdArc;

    fn db() -> Database {
        Database::new(EngineConfig::dynamic())
    }

    fn bindings() -> Vec<RelationBinding> {
        vec![RelationBinding::new(
            "t0",
            vec!["c0".to_string(), "c1".to_string()],
        )]
    }

    fn eval_both(
        db: &Database,
        expr: &Expr,
        row: &[Value],
    ) -> (EngineResult<Value>, EngineResult<Value>) {
        let bindings = bindings();
        let scope = Scope::new(&bindings, row);
        let evaluator = Evaluator::new(db, ExecutionMode::Reference);
        let tree = evaluator.eval(expr, &scope);
        let compiled = compile_expr(db, ExecutionMode::Reference, &bindings, expr);
        let fast = compiled.eval(&evaluator, &scope);
        (tree, fast)
    }

    #[test]
    fn compiled_matches_tree_on_columns_and_arithmetic() {
        let db = db();
        let expr = sql_parser::parse_expression("c0 + c1 * 2").unwrap();
        let row = vec![Value::Integer(3), Value::Integer(4)];
        let (tree, fast) = eval_both(&db, &expr, &row);
        assert_eq!(tree, fast);
        assert_eq!(fast.unwrap(), Value::Integer(11));
    }

    #[test]
    fn compiled_reports_identical_errors() {
        let strict = Database::new(EngineConfig::strict());
        let expr = sql_parser::parse_expression("c0 + 'a'").unwrap();
        let row = vec![Value::Integer(1), Value::Null];
        let (tree, fast) = eval_both(&strict, &expr, &row);
        assert_eq!(tree, fast);
        assert!(fast.is_err());
    }

    #[test]
    fn unknown_column_is_a_constant_error() {
        let db = db();
        let expr = sql_parser::parse_expression("missing + 1").unwrap();
        let (tree, fast) = eval_both(&db, &expr, &[Value::Integer(1), Value::Integer(2)]);
        assert_eq!(tree, fast);
        assert!(fast.unwrap_err().message.contains("no such column"));
    }

    #[test]
    fn constant_subtrees_are_memoized_but_error_identically() {
        let strict = Database::new(EngineConfig::strict());
        let expr = sql_parser::parse_expression("1 / 0").unwrap();
        let bindings = bindings();
        let scope = Scope::new(&bindings, &[Value::Null, Value::Null]);
        let evaluator = Evaluator::new(&strict, ExecutionMode::Reference);
        let compiled = compile_expr(&strict, ExecutionMode::Reference, &bindings, &expr);
        for _ in 0..3 {
            let out = compiled.eval(&evaluator, &scope);
            assert_eq!(out, evaluator.eval(&expr, &scope));
        }
    }

    #[test]
    fn plans_are_cached_and_partition_shapes_share_the_predicate() {
        let db = db();
        let bindings = bindings();
        let pred = sql_parser::parse_expression("c0 = 1").unwrap();
        let a = compile_expr(&db, ExecutionMode::Optimized, &bindings, &pred);
        let b = compile_expr(&db, ExecutionMode::Optimized, &bindings, &pred);
        assert!(
            StdArc::ptr_eq(&a.run, &b.run),
            "recompiling the same predicate must hit the cache"
        );
        // The oracle partition shapes compile to wrappers around the cached
        // plan — the predicate itself is not recompiled, so the cache now
        // holds entries for `p`, `NOT p` and `p IS NULL` all sharing `p`.
        let negated = pred.clone().not();
        let _ = compile_expr(&db, ExecutionMode::Optimized, &bindings, &negated);
        let is_null = pred.clone().is_null();
        let _ = compile_expr(&db, ExecutionMode::Optimized, &bindings, &is_null);
        let c = compile_expr(&db, ExecutionMode::Optimized, &bindings, &pred);
        assert!(StdArc::ptr_eq(&a.run, &c.run));
    }

    #[test]
    fn modes_do_not_share_plans() {
        let db = db();
        let bindings = bindings();
        let pred = sql_parser::parse_expression("c0 = 1").unwrap();
        let opt = compile_expr(&db, ExecutionMode::Optimized, &bindings, &pred);
        let refe = compile_expr(&db, ExecutionMode::Reference, &bindings, &pred);
        assert!(!StdArc::ptr_eq(&opt.run, &refe.run));
    }

    #[test]
    fn ambiguous_columns_error_like_the_tree_walker() {
        let db = db();
        let bindings = vec![
            RelationBinding::new("t0", vec!["c0".to_string()]),
            RelationBinding::new("t1", vec!["c0".to_string()]),
        ];
        let expr = sql_parser::parse_expression("c0").unwrap();
        let scope = Scope::new(&bindings, &[Value::Integer(1), Value::Integer(2)]);
        let evaluator = Evaluator::new(&db, ExecutionMode::Reference);
        let compiled = compile_expr(&db, ExecutionMode::Reference, &bindings, &expr);
        assert_eq!(
            compiled.eval(&evaluator, &scope),
            evaluator.eval(&expr, &scope)
        );
    }
}
