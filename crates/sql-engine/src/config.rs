//! Engine behaviour configuration.

use crate::faults::FaultConfig;

/// The typing discipline of the engine instance.
///
/// The paper treats "statically typed vs dynamically typed" as an *abstract
/// property* feature of the DBMS under test (Appendix A.1): PostgreSQL
/// rejects ill-typed expressions, SQLite coerces almost anything. The engine
/// implements both disciplines so the simulated fleet can cover both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TypingMode {
    /// Dynamic typing with implicit coercions (SQLite-like).
    #[default]
    Dynamic,
    /// Strict typing: type mismatches are errors (PostgreSQL-like).
    Strict,
}

impl TypingMode {
    /// Whether implicit coercions across type families are allowed.
    pub fn allows_implicit_coercion(self) -> bool {
        matches!(self, TypingMode::Dynamic)
    }
}

/// How the engine evaluates expressions against rows.
///
/// Both strategies are observationally identical — same values, same
/// errors, same coverage sets — which the compiled↔tree differential
/// property suite and the fleet-level parity test enforce. The tree walker
/// is kept as the reference arm: it is the executable specification the
/// compiled plans are checked against, and the baseline arm of the
/// `campaign_throughput` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// Compile each expression once per statement into a reusable closure
    /// tree (pre-resolved column offsets, pre-validated function arity,
    /// memoized constant subtrees), cached per database. The default.
    #[default]
    Compiled,
    /// Re-walk the AST for every row (the pre-compilation evaluator).
    TreeWalk,
}

/// Execution behaviour of an engine instance: typing discipline plus the
/// injected-fault switches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineConfig {
    /// Typing discipline.
    pub typing: TypingMode,
    /// Injected logic bugs (all off by default).
    pub faults: FaultConfig,
    /// Expression evaluation strategy.
    pub eval: EvalStrategy,
}

impl EngineConfig {
    /// A fault-free, dynamically-typed configuration.
    pub fn dynamic() -> EngineConfig {
        EngineConfig {
            typing: TypingMode::Dynamic,
            ..EngineConfig::default()
        }
    }

    /// A fault-free, strictly-typed configuration.
    pub fn strict() -> EngineConfig {
        EngineConfig {
            typing: TypingMode::Strict,
            ..EngineConfig::default()
        }
    }

    /// Returns a copy using the given evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> EngineConfig {
        self.eval = eval;
        self
    }

    /// Returns a copy with the given faults enabled by name; unknown names
    /// are ignored.
    pub fn with_faults(mut self, names: &[&str]) -> EngineConfig {
        for n in names {
            self.faults.enable(n);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_permission_follows_mode() {
        assert!(TypingMode::Dynamic.allows_implicit_coercion());
        assert!(!TypingMode::Strict.allows_implicit_coercion());
    }

    #[test]
    fn with_faults_enables_known_names_only() {
        let cfg = EngineConfig::dynamic().with_faults(&["bad_not_elimination", "bogus"]);
        assert!(cfg.faults.bad_not_elimination);
        assert_eq!(cfg.faults.enabled_count(), 1);
    }
}
