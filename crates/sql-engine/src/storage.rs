//! Row storage, table statistics and the [`Database`] instance type.
//!
//! Storage is **copy-on-write versioned**: each table's rows live behind an
//! `Arc<Vec<Row>>` and its statistics behind an `Arc<TableStats>`. Cloning a
//! [`Database`] — which is how a session snapshot, an undo-log pre-image or
//! an [`crate::Engine`] clone is taken — therefore copies *pointers*, one
//! per table, never row data. The first mutation of a table through
//! [`Database::rows_mut`] triggers the one deep clone ([`Arc::make_mut`])
//! that detaches the mutated version from every snapshot still holding the
//! old `Arc`; unwritten tables are shared for the lifetime of the snapshot.
//! [`Database::cow_clones`] counts those detach events, which is how the
//! campaign reports CoW effectiveness (tables snapshotted vs. tables
//! actually cloned).

use crate::catalog::Catalog;
use crate::config::EngineConfig;
use crate::coverage::CoverageTracker;
use crate::error::{EngineError, EngineResult};
use sql_ast::Value;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A stored row: one [`Value`] per column, in schema order.
pub type Row = Vec<Value>;

/// A result set returned by a query: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Creates an empty result set with the given column names.
    pub fn with_columns(columns: Vec<String>) -> ResultSet {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// A canonical multiset fingerprint of the rows (order-insensitive).
    /// Two result sets with the same fingerprint contain the same rows with
    /// the same multiplicities — this is how the oracles compare results.
    ///
    /// Rows collapse to allocation-free 128-bit hashes of their canonical
    /// dedup identity (see [`sql_ast::row_fingerprint`]); string rendering
    /// is reserved for the bug-report path.
    pub fn multiset_fingerprint(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self
            .rows
            .iter()
            .map(|row| sql_ast::row_fingerprint(row))
            .collect();
        keys.sort_unstable();
        keys
    }
}

/// Per-column statistics collected by `ANALYZE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Number of distinct non-`NULL` values.
    pub distinct: usize,
    /// Number of `NULL`s.
    pub nulls: usize,
}

/// Per-table statistics collected by `ANALYZE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Row count at the time of `ANALYZE`.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

/// An in-memory database instance: catalog, row storage, statistics,
/// execution configuration and coverage accounting.
///
/// # Examples
///
/// ```
/// use sql_engine::{Database, EngineConfig};
///
/// let mut db = Database::new(EngineConfig::dynamic());
/// db.execute_sql("CREATE TABLE t0 (c0 INTEGER)").unwrap();
/// db.execute_sql("INSERT INTO t0 (c0) VALUES (1), (2)").unwrap();
/// let rs = db.query_sql("SELECT c0 FROM t0 WHERE c0 > 1").unwrap();
/// assert_eq!(rs.row_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The schema catalog.
    pub catalog: Catalog,
    /// Execution behaviour (typing discipline, injected faults).
    pub config: EngineConfig,
    pub(crate) data: BTreeMap<String, Arc<Vec<Row>>>,
    pub(crate) stats: BTreeMap<String, Arc<TableStats>>,
    /// Open-transaction state: empty in autocommit, one frame per
    /// `BEGIN`/`SAVEPOINT` otherwise (see [`crate::txn`]).
    pub(crate) txn: crate::txn::TxnStack,
    /// Number of copy-on-write table detaches performed by this instance
    /// (shared `Arc` deep-cloned on first mutation).
    cow_clones: Cell<u64>,
    coverage: RefCell<CoverageTracker>,
    plans: crate::compile::PlanCache,
}

impl Database {
    /// Creates an empty database with the given behaviour configuration.
    pub fn new(config: EngineConfig) -> Database {
        Database {
            config,
            ..Database::default()
        }
    }

    fn key(name: &str) -> std::borrow::Cow<'_, str> {
        crate::catalog::lowercase_key(name)
    }

    /// Registers storage for a newly created table.
    pub(crate) fn create_storage(&mut self, name: &str) {
        self.txn_touch(name);
        self.data
            .insert(Self::key(name).into_owned(), Arc::new(Vec::new()));
    }

    /// Removes storage (and stats) for a dropped table.
    pub(crate) fn drop_storage(&mut self, name: &str) {
        self.txn_touch(name);
        self.data.remove(Self::key(name).as_ref());
        self.stats.remove(Self::key(name).as_ref());
    }

    /// Rows of a stored table.
    ///
    /// # Errors
    ///
    /// Fails when the table has no storage (unknown table).
    pub fn rows(&self, name: &str) -> EngineResult<&Vec<Row>> {
        self.data
            .get(Self::key(name).as_ref())
            .map(Arc::as_ref)
            .ok_or_else(|| EngineError::catalog(format!("no such table: {name}")))
    }

    /// The shared version handle of a stored table's rows (a pointer bump,
    /// never a row copy).
    ///
    /// # Errors
    ///
    /// Fails when the table has no storage (unknown table).
    pub fn shared_rows(&self, name: &str) -> EngineResult<Arc<Vec<Row>>> {
        self.data
            .get(Self::key(name).as_ref())
            .cloned()
            .ok_or_else(|| EngineError::catalog(format!("no such table: {name}")))
    }

    /// Mutable rows of a stored table. Inside a transaction, the table's
    /// pre-image is captured into the innermost undo frame before the
    /// mutable borrow is handed out (a pointer bump — the pre-image shares
    /// the current version). The version is then detached copy-on-write:
    /// shared `Arc`s are deep-cloned exactly once, private ones are mutated
    /// in place.
    ///
    /// # Errors
    ///
    /// Fails when the table has no storage (unknown table).
    pub fn rows_mut(&mut self, name: &str) -> EngineResult<&mut Vec<Row>> {
        self.txn_touch(name);
        let version = self
            .data
            .get_mut(Self::key(name).as_ref())
            .ok_or_else(|| EngineError::catalog(format!("no such table: {name}")))?;
        if Arc::strong_count(version) > 1 {
            self.cow_clones.set(self.cow_clones.get() + 1);
        }
        Ok(Arc::make_mut(version))
    }

    /// Statistics recorded for a table by the last `ANALYZE`, if any.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(Self::key(name).as_ref()).map(Arc::as_ref)
    }

    /// Records statistics for a table.
    pub(crate) fn set_stats(&mut self, name: &str, stats: TableStats) {
        self.txn_touch(name);
        self.stats
            .insert(Self::key(name).into_owned(), Arc::new(stats));
    }

    /// Total number of stored rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.data.values().map(|rows| rows.len()).sum()
    }

    /// Number of copy-on-write detaches this instance has performed: the
    /// tables whose shared version actually had to be deep-cloned before a
    /// mutation. Snapshotted-but-unwritten tables never appear here.
    pub fn cow_clones(&self) -> u64 {
        self.cow_clones.get()
    }

    /// Resets the copy-on-write detach counter (used when a fresh snapshot
    /// workspace starts accounting from zero).
    pub(crate) fn reset_cow_clones(&self) {
        self.cow_clones.set(0);
    }

    /// The compiled-plan cache for this database instance.
    pub(crate) fn plan_cache(&self) -> &crate::compile::PlanCache {
        &self.plans
    }

    /// Records coverage information. Execution code calls this; it is
    /// interior-mutable because queries only hold a shared borrow of the
    /// database.
    pub fn record_coverage(&self, f: impl FnOnce(&mut CoverageTracker)) {
        f(&mut self.coverage.borrow_mut());
    }

    /// A snapshot of the coverage accumulated so far.
    pub fn coverage_snapshot(&self) -> CoverageTracker {
        self.coverage.borrow().clone()
    }

    /// Resets coverage accounting (used between experiment runs). Also
    /// drops cached compiled plans: a plan records each coverage point only
    /// on its first evaluation, so plans from before the reset would never
    /// re-record their features.
    pub fn reset_coverage(&self) {
        *self.coverage.borrow_mut() = CoverageTracker::new();
        self.plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_set_fingerprint_is_order_insensitive() {
        let a = ResultSet {
            columns: vec!["c0".into()],
            rows: vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
        };
        let b = ResultSet {
            columns: vec!["c0".into()],
            rows: vec![vec![Value::Integer(2)], vec![Value::Integer(1)]],
        };
        assert_eq!(a.multiset_fingerprint(), b.multiset_fingerprint());
    }

    #[test]
    fn result_set_fingerprint_respects_multiplicity() {
        let a = ResultSet {
            columns: vec!["c0".into()],
            rows: vec![vec![Value::Integer(1)], vec![Value::Integer(1)]],
        };
        let b = ResultSet {
            columns: vec!["c0".into()],
            rows: vec![vec![Value::Integer(1)]],
        };
        assert_ne!(a.multiset_fingerprint(), b.multiset_fingerprint());
    }

    #[test]
    fn storage_is_case_insensitive() {
        let mut db = Database::new(EngineConfig::dynamic());
        db.create_storage("T0");
        assert!(db.rows("t0").is_ok());
        db.rows_mut("t0").unwrap().push(vec![Value::Integer(1)]);
        assert_eq!(db.total_rows(), 1);
        db.drop_storage("t0");
        assert!(db.rows("t0").is_err());
    }
}
