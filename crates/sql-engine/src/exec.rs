//! Statement and query execution.
//!
//! Queries run through a single pipeline in one of two modes:
//!
//! * [`ExecutionMode::Optimized`] — the query is first rewritten by the
//!   [`crate::optimizer`] and base-table scans may use index lookups. This
//!   is the path a normal client exercises and the path in which most
//!   injected faults live.
//! * [`ExecutionMode::Reference`] — the query is executed exactly as
//!   written, with naive nested-loop evaluation and no rewrites. This is the
//!   "non-optimizing reference engine" that the NoREC oracle conceptually
//!   relies on; the engine itself uses it as its ground truth in tests.

use crate::catalog::{IndexDef, TableSchema, ViewDef};
use crate::compile::SiteExpr;
use crate::config::TypingMode;
use crate::error::{EngineError, EngineResult};
use crate::eval::{Evaluator, RelationBinding, Scope};
use crate::optimizer::optimize_select;
use crate::storage::{ColumnStats, Database, ResultSet, Row, TableStats};
use sql_ast::{
    AggregateFunction, BinaryOp, DataType, Expr, Insert, JoinType, Select, SelectItem, SetOperator,
    SortOrder, Statement, TableFactor, Value,
};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

/// Whether a query runs through the optimizer or as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Optimized execution (rewrites + index access paths).
    Optimized,
    /// Naive reference execution (no rewrites, sequential scans only).
    Reference,
}

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// DDL or utility statement executed successfully.
    Ok,
    /// DML statement affected this many rows.
    RowsAffected(usize),
    /// A query produced a result set.
    Rows(ResultSet),
}

impl StatementResult {
    /// The result set, if this was a query.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            StatementResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }
}

impl Database {
    /// Parses and executes a single SQL statement (optimized mode).
    ///
    /// # Errors
    ///
    /// Returns the engine error or a parse error wrapped as an engine error.
    pub fn execute_sql(&mut self, sql: &str) -> EngineResult<StatementResult> {
        let stmt = sql_parser::parse_statement(sql)
            .map_err(|e| EngineError::new(crate::error::ErrorKind::Unsupported, e.to_string()))?;
        self.execute(&stmt)
    }

    /// Parses and executes a query, returning its rows (optimized mode).
    ///
    /// # Errors
    ///
    /// Fails if the SQL is not a query or execution fails.
    pub fn query_sql(&mut self, sql: &str) -> EngineResult<ResultSet> {
        match self.execute_sql(sql)? {
            StatementResult::Rows(rs) => Ok(rs),
            _ => Err(EngineError::runtime("statement did not produce rows")),
        }
    }

    /// Executes an already-parsed statement (optimized mode for queries).
    ///
    /// # Errors
    ///
    /// Propagates catalog, type, constraint and runtime errors.
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<StatementResult> {
        execute_statement(self, stmt)
    }

    /// Executes a query in an explicit execution mode without mutating the
    /// database.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn query(&self, select: &Select, mode: ExecutionMode) -> EngineResult<ResultSet> {
        execute_select(self, select, mode)
    }
}

/// Executes a statement against a database.
///
/// # Errors
///
/// Propagates catalog, type, constraint and runtime errors.
pub fn execute_statement(db: &mut Database, stmt: &Statement) -> EngineResult<StatementResult> {
    db.record_coverage(|cov| cov.statement(stmt.feature_name()));
    match stmt {
        Statement::CreateTable(create) => {
            let schema = TableSchema::from_create(create)?;
            if create.if_not_exists && db.catalog.table(&create.name).is_some() {
                return Ok(StatementResult::Ok);
            }
            db.catalog.add_table(schema)?;
            db.create_storage(&create.name);
            Ok(StatementResult::Ok)
        }
        Statement::CreateIndex(create) => {
            let index = IndexDef::from_create(create);
            let schema = db
                .catalog
                .table(&create.table)
                .ok_or_else(|| EngineError::catalog(format!("no such table: {}", create.table)))?
                .clone();
            for col in &create.columns {
                if schema.column(col).is_none() {
                    return Err(EngineError::catalog(format!(
                        "no such column in {}: {col}",
                        create.table
                    )));
                }
            }
            if create.unique {
                ensure_unique(db, &schema, &create.columns, "unique index")?;
            }
            db.catalog.add_index(index)?;
            Ok(StatementResult::Ok)
        }
        Statement::CreateView(create) => {
            if db.catalog.name_in_use(&create.name) {
                return Err(EngineError::catalog(format!(
                    "object '{}' already exists",
                    create.name
                )));
            }
            // Validate the defining query by executing it once.
            let rs = execute_select(db, &create.query, ExecutionMode::Reference)?;
            if !create.columns.is_empty() && create.columns.len() != rs.columns.len() {
                return Err(EngineError::catalog(format!(
                    "view '{}' declares {} columns but its query produces {}",
                    create.name,
                    create.columns.len(),
                    rs.columns.len()
                )));
            }
            db.catalog.add_view(ViewDef::from_create(create))?;
            Ok(StatementResult::Ok)
        }
        Statement::Insert(insert) => execute_insert(db, insert),
        Statement::Update(update) => execute_update(db, update),
        Statement::Delete(delete) => execute_delete(db, delete),
        Statement::Analyze(table) => {
            let names: Vec<String> = match table {
                Some(t) => {
                    if db.catalog.table(t).is_none() {
                        return Err(EngineError::catalog(format!("no such table: {t}")));
                    }
                    vec![t.clone()]
                }
                None => db.catalog.table_names(),
            };
            for name in names {
                let schema = db.catalog.table(&name).cloned();
                let rows = db.rows(&name)?.clone();
                let mut stats = TableStats {
                    row_count: rows.len(),
                    columns: Vec::new(),
                };
                if let Some(schema) = schema {
                    for (i, _) in schema.columns.iter().enumerate() {
                        let mut distinct = BTreeSet::new();
                        let mut nulls = 0;
                        for row in &rows {
                            match row.get(i) {
                                Some(Value::Null) | None => nulls += 1,
                                Some(v) => {
                                    distinct.insert(v.dedup_key());
                                }
                            }
                        }
                        stats.columns.push(ColumnStats {
                            distinct: distinct.len(),
                            nulls,
                        });
                    }
                }
                db.set_stats(&name, stats);
            }
            Ok(StatementResult::Ok)
        }
        Statement::Select(query) => {
            let rs = execute_select(db, query, ExecutionMode::Optimized)?;
            Ok(StatementResult::Rows(rs))
        }
        Statement::Drop {
            kind,
            name,
            if_exists,
        } => {
            let dropped = match kind {
                sql_ast::DropKind::Table => {
                    let d = db.catalog.drop_table(name);
                    if d {
                        db.drop_storage(name);
                    }
                    d
                }
                sql_ast::DropKind::View => db.catalog.drop_view(name),
                sql_ast::DropKind::Index => db.catalog.drop_index(name),
            };
            if !dropped && !if_exists {
                return Err(EngineError::catalog(format!("no such object: {name}")));
            }
            Ok(StatementResult::Ok)
        }
        Statement::Refresh(table) => {
            if db.catalog.table(table).is_none() {
                return Err(EngineError::catalog(format!("no such table: {table}")));
            }
            Ok(StatementResult::Ok)
        }
        // The begin mode only matters under concurrent sessions (the
        // `session` module turns IMMEDIATE into eager write intent); a
        // single-connection database treats every mode like a plain BEGIN.
        Statement::Begin(_) => {
            db.txn_begin()?;
            Ok(StatementResult::Ok)
        }
        Statement::Commit => {
            db.txn_commit()?;
            Ok(StatementResult::Ok)
        }
        Statement::Rollback => {
            db.txn_rollback()?;
            Ok(StatementResult::Ok)
        }
        Statement::Savepoint(name) => {
            db.txn_savepoint(name)?;
            Ok(StatementResult::Ok)
        }
        Statement::RollbackTo(name) => {
            db.txn_rollback_to(name)?;
            Ok(StatementResult::Ok)
        }
        Statement::ReleaseSavepoint(name) => {
            db.txn_release(name)?;
            Ok(StatementResult::Ok)
        }
    }
}

fn ensure_unique(
    db: &Database,
    schema: &TableSchema,
    columns: &[String],
    what: &str,
) -> EngineResult<()> {
    let rows = db.rows(&schema.name)?;
    let idx: Vec<usize> = columns
        .iter()
        .filter_map(|c| schema.column_index(c))
        .collect();
    let mut seen = BTreeSet::new();
    for row in rows {
        let key: Vec<String> = idx
            .iter()
            .map(|&i| row.get(i).cloned().unwrap_or(Value::Null).dedup_key())
            .collect();
        if key.iter().any(|k| k == "\u{0}N") {
            continue; // NULLs never conflict.
        }
        if !seen.insert(key.join("|")) {
            return Err(EngineError::constraint(format!(
                "{what} violated by existing rows on ({})",
                columns.join(", ")
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- DML ----

fn coerce_for_column(
    db: &Database,
    value: Value,
    data_type: DataType,
    column: &str,
) -> EngineResult<Value> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    match db.config.typing {
        TypingMode::Dynamic => {
            // SQLite-style affinity: coerce when lossless, otherwise store
            // the value as given.
            db.record_coverage(|cov| {
                cov.coercion(value.data_type().sql_keyword(), data_type.sql_keyword())
            });
            Ok(match (data_type, &value) {
                (DataType::Integer, Value::Text(s)) => match s.trim().parse::<i64>() {
                    Ok(i) => Value::Integer(i),
                    Err(_) => value,
                },
                (DataType::Integer, Value::Boolean(b)) => Value::Integer(i64::from(*b)),
                (DataType::Integer, Value::Real(r)) if r.fract() == 0.0 => {
                    Value::Integer(*r as i64)
                }
                (DataType::Text, v) => Value::Text(v.coerce_text().unwrap_or_default()),
                (DataType::Boolean, Value::Integer(i)) => Value::Boolean(*i != 0),
                (DataType::Real, Value::Integer(i)) => Value::Real(*i as f64),
                _ => value,
            })
        }
        TypingMode::Strict => {
            let ok = matches!(
                (data_type, &value),
                (DataType::Integer, Value::Integer(_))
                    | (DataType::Real, Value::Real(_) | Value::Integer(_))
                    | (DataType::Text, Value::Text(_))
                    | (DataType::Boolean, Value::Boolean(_))
            );
            if !ok {
                return Err(EngineError::type_error(format!(
                    "column {column} is of type {data_type} but expression is of type {}",
                    value.data_type()
                )));
            }
            Ok(match (data_type, value) {
                (DataType::Real, Value::Integer(i)) => Value::Real(i as f64),
                (_, v) => v,
            })
        }
    }
}

pub(crate) fn unique_key_sets(db: &Database, schema: &TableSchema) -> Vec<Vec<usize>> {
    let mut sets: Vec<Vec<String>> = Vec::new();
    if !schema.primary_key.is_empty() {
        sets.push(schema.primary_key.clone());
    }
    for c in &schema.columns {
        if c.unique
            && !sets
                .iter()
                .any(|s| s.len() == 1 && s[0].eq_ignore_ascii_case(&c.name))
        {
            sets.push(vec![c.name.clone()]);
        }
    }
    for uc in &schema.unique_constraints {
        sets.push(uc.clone());
    }
    for index in db.catalog.indexes_on(&schema.name) {
        if index.unique && index.predicate.is_none() {
            sets.push(index.columns.clone());
        }
    }
    sets.into_iter()
        .map(|cols| {
            cols.iter()
                .filter_map(|c| schema.column_index(c))
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .collect()
}

fn row_violates_unique(existing: &[Row], candidate: &Row, key_sets: &[Vec<usize>]) -> bool {
    for key in key_sets {
        let cand: Vec<String> = key
            .iter()
            .map(|&i| candidate.get(i).cloned().unwrap_or(Value::Null).dedup_key())
            .collect();
        if cand.iter().any(|k| k == "\u{0}N") {
            continue;
        }
        for row in existing {
            let other: Vec<String> = key
                .iter()
                .map(|&i| row.get(i).cloned().unwrap_or(Value::Null).dedup_key())
                .collect();
            if cand == other {
                return true;
            }
        }
    }
    false
}

fn execute_insert(db: &mut Database, insert: &Insert) -> EngineResult<StatementResult> {
    let schema = db
        .catalog
        .table(&insert.table)
        .ok_or_else(|| EngineError::catalog(format!("no such table: {}", insert.table)))?
        .clone();
    // Map the statement's column list onto schema positions.
    let positions: Vec<usize> = if insert.columns.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        insert
            .columns
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| EngineError::catalog(format!("no such column: {c}")))
            })
            .collect::<EngineResult<Vec<usize>>>()?
    };
    let key_sets = unique_key_sets(db, &schema);
    let evaluator = Evaluator::new(db, ExecutionMode::Reference);
    let mut new_rows: Vec<Row> = Vec::new();
    let mut inserted = 0usize;
    for value_row in &insert.values {
        if value_row.len() != positions.len() {
            return Err(EngineError::type_error(format!(
                "INSERT has {} values but {} columns",
                value_row.len(),
                positions.len()
            )));
        }
        let mut row: Row = vec![Value::Null; schema.columns.len()];
        let mut provided = vec![false; schema.columns.len()];
        for (expr, &pos) in value_row.iter().zip(&positions) {
            let raw = evaluator.eval(expr, &Scope::EMPTY)?;
            let coerced = coerce_for_column(
                db,
                raw,
                schema.columns[pos].data_type,
                &schema.columns[pos].name,
            )?;
            row[pos] = coerced;
            provided[pos] = true;
        }
        // Fill defaults for unprovided columns.
        for (i, col) in schema.columns.iter().enumerate() {
            if !provided[i] {
                if let Some(default) = &col.default {
                    let raw = evaluator.eval(default, &Scope::EMPTY)?;
                    row[i] = coerce_for_column(db, raw, col.data_type, &col.name)?;
                }
            }
        }
        // NOT NULL checks.
        let mut violation: Option<EngineError> = None;
        for (i, col) in schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                violation = Some(EngineError::constraint(format!(
                    "NOT NULL constraint failed: {}.{}",
                    schema.name, col.name
                )));
                break;
            }
        }
        if violation.is_none() {
            let existing = db.rows(&insert.table)?;
            if row_violates_unique(existing, &row, &key_sets)
                || row_violates_unique(&new_rows, &row, &key_sets)
            {
                violation = Some(EngineError::constraint(format!(
                    "UNIQUE constraint failed on table {}",
                    schema.name
                )));
            }
        }
        match violation {
            Some(err) => {
                if insert.or_ignore {
                    continue;
                }
                return Err(err);
            }
            None => {
                new_rows.push(row);
                inserted += 1;
            }
        }
    }
    db.rows_mut(&insert.table)?.extend(new_rows);
    Ok(StatementResult::RowsAffected(inserted))
}

fn execute_update(db: &mut Database, update: &sql_ast::Update) -> EngineResult<StatementResult> {
    let schema = db
        .catalog
        .table(&update.table)
        .ok_or_else(|| EngineError::catalog(format!("no such table: {}", update.table)))?
        .clone();
    let bindings = vec![RelationBinding::new(
        schema.name.clone(),
        schema.column_names(),
    )];
    let rows = db.rows(&update.table)?.clone();
    let mut updated_rows: Vec<Row> = Vec::new();
    let mut affected = 0usize;
    {
        let evaluator = Evaluator::new(db, ExecutionMode::Reference);
        // Per-statement plans: the WHERE predicate and the assignment value
        // expressions are compiled once, then run per row.
        let pred_plan = update
            .where_clause
            .as_ref()
            .map(|p| SiteExpr::new(db, ExecutionMode::Reference, &bindings, p));
        let value_plans: Vec<SiteExpr<'_>> = update
            .assignments
            .iter()
            .map(|(_, e)| SiteExpr::new(db, ExecutionMode::Reference, &bindings, e))
            .collect();
        for row in &rows {
            let scope = Scope::new(&bindings, row);
            let matches = match &pred_plan {
                Some(pred) => pred.eval_truth(&evaluator, &scope)?.is_true(),
                None => true,
            };
            if !matches {
                updated_rows.push(row.clone());
                continue;
            }
            let mut new_row = row.clone();
            for ((col, _), plan) in update.assignments.iter().zip(&value_plans) {
                let idx = schema
                    .column_index(col)
                    .ok_or_else(|| EngineError::catalog(format!("no such column: {col}")))?;
                let raw = plan.eval(&evaluator, &scope)?;
                let coerced = coerce_for_column(db, raw, schema.columns[idx].data_type, col)?;
                if schema.columns[idx].not_null && coerced.is_null() {
                    return Err(EngineError::constraint(format!(
                        "NOT NULL constraint failed: {}.{}",
                        schema.name, col
                    )));
                }
                new_row[idx] = coerced;
            }
            updated_rows.push(new_row);
            affected += 1;
        }
    }
    // Verify uniqueness over the updated relation.
    let key_sets = unique_key_sets(db, &schema);
    for (i, row) in updated_rows.iter().enumerate() {
        let others: Vec<Row> = updated_rows
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.clone())
            .collect();
        if row_violates_unique(&others, row, &key_sets) {
            return Err(EngineError::constraint(format!(
                "UNIQUE constraint failed on table {}",
                schema.name
            )));
        }
    }
    *db.rows_mut(&update.table)? = updated_rows;
    Ok(StatementResult::RowsAffected(affected))
}

fn execute_delete(db: &mut Database, delete: &sql_ast::Delete) -> EngineResult<StatementResult> {
    let schema = db
        .catalog
        .table(&delete.table)
        .ok_or_else(|| EngineError::catalog(format!("no such table: {}", delete.table)))?
        .clone();
    let bindings = vec![RelationBinding::new(
        schema.name.clone(),
        schema.column_names(),
    )];
    let rows = db.rows(&delete.table)?.clone();
    let mut kept: Vec<Row> = Vec::new();
    let mut removed = 0usize;
    {
        let evaluator = Evaluator::new(db, ExecutionMode::Reference);
        let pred_plan = delete
            .where_clause
            .as_ref()
            .map(|p| SiteExpr::new(db, ExecutionMode::Reference, &bindings, p));
        for row in &rows {
            let scope = Scope::new(&bindings, row);
            let matches = match &pred_plan {
                Some(pred) => pred.eval_truth(&evaluator, &scope)?.is_true(),
                None => true,
            };
            if matches {
                removed += 1;
            } else {
                kept.push(row.clone());
            }
        }
    }
    *db.rows_mut(&delete.table)? = kept;
    Ok(StatementResult::RowsAffected(removed))
}

// ------------------------------------------------------------- queries ----

/// A relation during query processing. Base-table scans *borrow* the
/// stored rows (the common case on the oracle hot path — a full scan with
/// no surviving WHERE clause never copies a row); joins, views and derived
/// tables own their materialised rows.
#[derive(Debug, Clone)]
struct Relation<'a> {
    bindings: Vec<RelationBinding>,
    rows: Cow<'a, [Row]>,
}

impl Relation<'_> {
    fn width(&self) -> usize {
        self.bindings.iter().map(|b| b.columns.len()).sum()
    }
}

/// Executes a query with no outer scope.
///
/// # Errors
///
/// Propagates execution errors.
pub fn execute_select(
    db: &Database,
    select: &Select,
    mode: ExecutionMode,
) -> EngineResult<ResultSet> {
    execute_select_in_scope(db, select, mode, None)
}

/// Executes a query, optionally giving it access to an outer scope for
/// correlated subqueries.
///
/// # Errors
///
/// Propagates execution errors.
pub fn execute_select_in_scope(
    db: &Database,
    select: &Select,
    mode: ExecutionMode,
    outer: Option<&Scope<'_>>,
) -> EngineResult<ResultSet> {
    let optimized;
    let select = if mode == ExecutionMode::Optimized {
        optimized = optimize_select(db, select);
        &optimized
    } else {
        select
    };
    check_crash_faults(db, select)?;

    // Resolve FROM into a single joined relation.
    let relation = build_from(db, select, mode, outer)?;

    // Filter (WHERE), possibly via an index access path.
    let filtered = apply_where(db, select, mode, relation, outer)?;

    // Aggregate or project.
    let mut produced = if is_aggregate_query(select) {
        aggregate_and_project(db, select, mode, &filtered, outer)?
    } else {
        project_rows(db, select, mode, &filtered, outer)?
    };

    // DISTINCT.
    if select.distinct {
        db.record_coverage(|cov| cov.plan_operator("distinct"));
        let mut seen = BTreeSet::new();
        produced.rows.retain(|(row, _)| {
            let key = row
                .iter()
                .map(Value::dedup_key)
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }

    // Set operations.
    if let Some(set_op) = &select.set_op {
        db.record_coverage(|cov| cov.plan_operator("set_operation"));
        let right = execute_select_in_scope(db, &set_op.right, mode, outer)?;
        if right.columns.len() != produced.columns.len() {
            return Err(EngineError::type_error(
                "set operation requires matching column counts",
            ));
        }
        produced = combine_set_op(produced, right, set_op.op, set_op.all);
    }

    // ORDER BY.
    if !select.order_by.is_empty() {
        db.record_coverage(|cov| cov.plan_operator("sort"));
        sort_rows(db, select, &mut produced)?;
    }

    // LIMIT / OFFSET.
    let mut rows: Vec<Row> = produced.rows.into_iter().map(|(r, _)| r).collect();
    if let Some(offset) = select.offset {
        let offset = offset as usize;
        rows = rows.into_iter().skip(offset).collect();
    }
    if let Some(limit) = select.limit {
        rows.truncate(limit as usize);
    }

    Ok(ResultSet {
        columns: produced.columns,
        rows,
    })
}

/// Intermediate projected output: column names plus rows carrying their
/// ORDER BY keys.
struct Produced {
    columns: Vec<String>,
    rows: Vec<(Row, Vec<Value>)>,
}

fn check_crash_faults(db: &Database, select: &Select) -> EngineResult<()> {
    let faults = &db.config.faults;
    if faults.crash_on_deep_expressions {
        let deep = select
            .where_clause
            .iter()
            .chain(select.having.iter())
            .any(|e| e.depth() >= 3 && e.node_count() > 24);
        if deep {
            return Err(EngineError::runtime(
                "internal error: expression evaluator stack exhausted",
            ));
        }
    }
    if faults.crash_on_many_joins {
        let relations: usize = select.from.iter().map(|t| 1 + t.joins.len()).sum();
        if relations >= 3 {
            return Err(EngineError::runtime(
                "internal error: circuit breaker tripped (out of memory)",
            ));
        }
    }
    Ok(())
}

fn is_aggregate_query(select: &Select) -> bool {
    select.is_aggregate()
        || select
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false)
}

fn build_from<'a>(
    db: &'a Database,
    select: &Select,
    mode: ExecutionMode,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation<'a>> {
    if select.from.is_empty() {
        return Ok(Relation {
            bindings: Vec::new(),
            rows: Cow::Owned(vec![Vec::new()]),
        });
    }
    let mut combined: Option<Relation<'a>> = None;
    for twj in &select.from {
        let mut current = resolve_factor(db, &twj.relation, mode, outer)?;
        for join in &twj.joins {
            let right = resolve_factor(db, &join.relation, mode, outer)?;
            current = join_relations(db, mode, current, right, join, outer)?;
        }
        combined = Some(match combined {
            None => current,
            Some(left) => {
                db.record_coverage(|cov| cov.plan_operator("cross_product"));
                cross_product(left, current)
            }
        });
    }
    Ok(combined.expect("non-empty FROM"))
}

fn resolve_factor<'a>(
    db: &'a Database,
    factor: &TableFactor,
    mode: ExecutionMode,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation<'a>> {
    match factor {
        TableFactor::Table { name, alias } => {
            let visible = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(view) = db.catalog.view(name) {
                db.record_coverage(|cov| cov.plan_operator("view_expansion"));
                let mut query = view.query.clone();
                if db.config.faults.bad_view_predicate_drop {
                    // Injected fault: the view's own filter is lost when the
                    // view is expanded into the outer query.
                    query.where_clause = None;
                }
                let rs = execute_select_in_scope(db, &query, mode, outer)?;
                let columns = if view.columns.is_empty() {
                    rs.columns.clone()
                } else {
                    view.columns.clone()
                };
                return Ok(Relation {
                    bindings: vec![RelationBinding::new(visible, columns)],
                    rows: Cow::Owned(rs.rows),
                });
            }
            let schema = db
                .catalog
                .table(name)
                .ok_or_else(|| EngineError::catalog(format!("no such table: {name}")))?;
            db.record_coverage(|cov| cov.plan_operator("seq_scan"));
            Ok(Relation {
                bindings: vec![RelationBinding::new(visible, schema.shared_column_names())],
                rows: Cow::Borrowed(db.rows(name)?),
            })
        }
        TableFactor::Derived { subquery, alias } => {
            db.record_coverage(|cov| cov.plan_operator("derived_table"));
            let rs = execute_select_in_scope(db, subquery, mode, outer)?;
            Ok(Relation {
                bindings: vec![RelationBinding::new(alias.clone(), rs.columns)],
                rows: Cow::Owned(rs.rows),
            })
        }
    }
}

fn cross_product<'a>(left: Relation<'_>, right: Relation<'_>) -> Relation<'a> {
    let mut bindings = left.bindings;
    bindings.extend(right.bindings);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in left.rows.iter() {
        for r in right.rows.iter() {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            rows.push(row);
        }
    }
    Relation {
        bindings,
        rows: Cow::Owned(rows),
    }
}

fn join_relations<'a>(
    db: &Database,
    mode: ExecutionMode,
    left: Relation<'_>,
    right: Relation<'_>,
    join: &sql_ast::Join,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation<'a>> {
    db.record_coverage(|cov| cov.plan_operator(join.join_type.feature_name()));
    let left_width = left.width();
    let right_width = right.width();
    let mut bindings = left.bindings.clone();
    bindings.extend(right.bindings.clone());

    // NATURAL JOIN: equality over common column names.
    let natural_condition: Option<Expr> = if join.join_type == JoinType::Natural {
        let left_cols: Vec<(String, String)> = left
            .bindings
            .iter()
            .flat_map(|b| b.columns.iter().map(move |c| (b.name.clone(), c.clone())))
            .collect();
        let right_cols: Vec<(String, String)> = right
            .bindings
            .iter()
            .flat_map(|b| b.columns.iter().map(move |c| (b.name.clone(), c.clone())))
            .collect();
        let mut cond: Option<Expr> = None;
        for (lt, lc) in &left_cols {
            for (rt, rc) in &right_cols {
                if lc.eq_ignore_ascii_case(rc) {
                    let eq = Expr::qualified_column(lt.clone(), lc.clone())
                        .eq(Expr::qualified_column(rt.clone(), rc.clone()));
                    cond = Some(match cond {
                        None => eq,
                        Some(c) => c.and(eq),
                    });
                }
            }
        }
        cond
    } else {
        None
    };

    let evaluator = Evaluator::new(db, mode);
    let condition: Option<&Expr> = match join.join_type {
        JoinType::Cross => None,
        JoinType::Natural => natural_condition.as_ref(),
        _ => join.on.as_ref(),
    };
    // The join condition is compiled once and evaluated per row pair.
    let condition: Option<SiteExpr<'_>> = condition.map(|c| SiteExpr::new(db, mode, &bindings, c));
    let condition = condition.as_ref();

    let mut rows: Vec<Row> = Vec::new();
    match join.join_type {
        JoinType::Cross => {
            for l in left.rows.iter() {
                for r in right.rows.iter() {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    rows.push(row);
                }
            }
        }
        JoinType::Inner | JoinType::Natural => {
            for l in left.rows.iter() {
                for r in right.rows.iter() {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    if join_condition_holds(&evaluator, condition, &bindings, &row, outer)? {
                        rows.push(row);
                    }
                }
            }
        }
        JoinType::Left | JoinType::Full => {
            let mut matched_right = vec![false; right.rows.len()];
            for l in left.rows.iter() {
                let mut matched = false;
                for (ri, r) in right.rows.iter().enumerate() {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    if join_condition_holds(&evaluator, condition, &bindings, &row, outer)? {
                        matched = true;
                        matched_right[ri] = true;
                        rows.push(row);
                    }
                }
                if !matched {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Value::Null, right_width));
                    rows.push(row);
                }
            }
            if join.join_type == JoinType::Full {
                for (ri, r) in right.rows.iter().enumerate() {
                    if !matched_right[ri] {
                        let mut row: Row = std::iter::repeat_n(Value::Null, left_width).collect();
                        row.extend(r.iter().cloned());
                        rows.push(row);
                    }
                }
            }
        }
        JoinType::Right => {
            for r in right.rows.iter() {
                let mut matched = false;
                for l in left.rows.iter() {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    if join_condition_holds(&evaluator, condition, &bindings, &row, outer)? {
                        matched = true;
                        rows.push(row);
                    }
                }
                if !matched {
                    let mut row: Row = std::iter::repeat_n(Value::Null, left_width).collect();
                    row.extend(r.iter().cloned());
                    rows.push(row);
                }
            }
        }
    }
    Ok(Relation {
        bindings,
        rows: Cow::Owned(rows),
    })
}

fn join_condition_holds(
    evaluator: &Evaluator<'_>,
    condition: Option<&SiteExpr<'_>>,
    bindings: &[RelationBinding],
    row: &[Value],
    outer: Option<&Scope<'_>>,
) -> EngineResult<bool> {
    match condition {
        None => Ok(true),
        Some(cond) => {
            let scope = Scope {
                relations: bindings,
                row,
                parent: outer,
            };
            Ok(cond.eval_truth(evaluator, &scope)?.is_true())
        }
    }
}

/// Splits a predicate into its top-level conjuncts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

fn apply_where<'a>(
    db: &Database,
    select: &Select,
    mode: ExecutionMode,
    relation: Relation<'a>,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation<'a>> {
    let Some(pred) = &select.where_clause else {
        return Ok(relation);
    };
    db.record_coverage(|cov| cov.plan_operator("filter"));

    // Index access path: optimized mode, single base table, equality
    // conjunct on an indexed column.
    let mut candidate_rows: Option<Vec<Row>> = None;
    if mode == ExecutionMode::Optimized && relation.bindings.len() == 1 {
        if let Some((index, col_idx, literal)) = find_index_access(db, select, &relation, pred) {
            db.record_coverage(|cov| cov.plan_operator("index_lookup"));
            let evaluator = Evaluator::new(db, mode);
            let faults = &db.config.faults;
            let mut rows = Vec::new();
            for row in relation.rows.iter() {
                let value = row.get(col_idx).cloned().unwrap_or(Value::Null);
                let matches = if faults.bad_index_lookup_coercion {
                    // Injected fault: raw key comparison, skipping the
                    // coercion a full scan would perform.
                    value.dedup_key() == literal.dedup_key()
                        && value.data_type() == literal.data_type()
                } else {
                    evaluator.equals(&value, &literal)?.is_true()
                };
                if !matches {
                    continue;
                }
                if faults.bad_partial_index_scan {
                    if let Some(ipred) = &index.predicate {
                        // Injected fault: rows not covered by the partial
                        // index are silently dropped.
                        let scope = Scope {
                            relations: &relation.bindings,
                            row,
                            parent: outer,
                        };
                        if !evaluator
                            .eval_truth(ipred, &scope)
                            .unwrap_or(sql_ast::TruthValue::False)
                            .is_true()
                        {
                            continue;
                        }
                    }
                }
                rows.push(row.clone());
                if faults.bad_unique_index_shortcut && index.unique {
                    // Injected fault: a unique index lookup stops after the
                    // first match even when coercion makes more rows match.
                    break;
                }
            }
            candidate_rows = Some(rows);
        }
    }

    let rows_in = match candidate_rows {
        Some(rows) => Cow::Owned(rows),
        None => relation.rows,
    };
    let evaluator = Evaluator::new(db, mode);
    // The predicate is compiled once per statement and run per row.
    let plan = SiteExpr::new(db, mode, &relation.bindings, pred);
    // Owned rows are filtered by move; borrowed rows clone survivors only.
    let rows: Vec<Row> = match rows_in {
        Cow::Owned(owned) => {
            let mut rows = Vec::new();
            for row in owned {
                let scope = Scope {
                    relations: &relation.bindings,
                    row: &row,
                    parent: outer,
                };
                if plan.eval_truth(&evaluator, &scope)?.is_true() {
                    rows.push(row);
                }
            }
            rows
        }
        Cow::Borrowed(borrowed) => {
            let mut rows = Vec::new();
            for row in borrowed {
                let scope = Scope {
                    relations: &relation.bindings,
                    row,
                    parent: outer,
                };
                if plan.eval_truth(&evaluator, &scope)?.is_true() {
                    rows.push(row.clone());
                }
            }
            rows
        }
    };
    Ok(Relation {
        bindings: relation.bindings,
        rows: Cow::Owned(rows),
    })
}

/// Finds an applicable index access path: returns the index, the column's
/// flat position in the relation and the literal being matched.
fn find_index_access(
    db: &Database,
    select: &Select,
    relation: &Relation<'_>,
    pred: &Expr,
) -> Option<(IndexDef, usize, Value)> {
    // Only simple single-table scans (not views/derived tables) qualify.
    let factor = select.from.first()?.relation.clone();
    let table_name = match factor {
        TableFactor::Table { name, .. } if db.catalog.table(&name).is_some() => name,
        _ => return None,
    };
    let binding = relation.bindings.first()?;
    let allow_partial = db.config.faults.bad_partial_index_scan;
    for conjunct in conjuncts(pred) {
        if let Expr::Binary { left, op, right } = conjunct {
            if *op != BinaryOp::Eq {
                continue;
            }
            let (col, literal) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => (c, v.clone()),
                (Expr::Literal(v), Expr::Column(c)) => (c, v.clone()),
                _ => continue,
            };
            if let Some(table) = &col.table {
                if !table.eq_ignore_ascii_case(&binding.name) {
                    continue;
                }
            }
            for index in db.catalog.indexes_on(&table_name) {
                if index.predicate.is_some() && !allow_partial {
                    continue;
                }
                if index
                    .columns
                    .first()
                    .map(|c| c.eq_ignore_ascii_case(&col.column))
                    .unwrap_or(false)
                {
                    if let Some(pos) = binding
                        .columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(&col.column))
                    {
                        return Some((index.clone(), pos, literal));
                    }
                }
            }
        }
    }
    None
}

// ----------------------------------------------------------- projection ----

/// The output column name of a projection item: its alias, the column name
/// for plain column references, or a positional `exprN` name otherwise.
/// Unaliased complex expressions are deliberately NOT named by rendering
/// their SQL — naming runs for every executed query, and text rendering is
/// a serialization concern that stays off the execution path.
fn output_name(item: &SelectItem, index: usize) -> Option<String> {
    match item {
        SelectItem::Expr { expr, alias } => Some(match alias {
            Some(a) => a.clone(),
            None => match expr {
                Expr::Column(c) => c.column.clone(),
                _ => format!("expr{index}"),
            },
        }),
        _ => None,
    }
}

fn expand_projections(
    select: &Select,
    bindings: &[RelationBinding],
) -> EngineResult<Vec<(String, ProjectionSource)>> {
    let mut out = Vec::new();
    for (index, item) in select.projections.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                let mut offset = 0;
                for b in bindings {
                    for (i, col) in b.columns.iter().enumerate() {
                        out.push((col.clone(), ProjectionSource::Position(offset + i)));
                    }
                    offset += b.columns.len();
                }
                if bindings.is_empty() {
                    return Err(EngineError::catalog("SELECT * with no FROM clause"));
                }
            }
            SelectItem::QualifiedWildcard(table) => {
                let mut offset = 0;
                let mut found = false;
                for b in bindings {
                    if b.name.eq_ignore_ascii_case(table) {
                        for (i, col) in b.columns.iter().enumerate() {
                            out.push((col.clone(), ProjectionSource::Position(offset + i)));
                        }
                        found = true;
                    }
                    offset += b.columns.len();
                }
                if !found {
                    return Err(EngineError::catalog(format!("no such table: {table}")));
                }
            }
            SelectItem::Expr { expr, .. } => {
                out.push((
                    output_name(item, index).unwrap_or_default(),
                    ProjectionSource::Expr(expr.clone()),
                ));
            }
        }
    }
    Ok(out)
}

enum ProjectionSource {
    Position(usize),
    Expr(Expr),
}

/// A projection item's per-statement plan: a flat input position or a
/// compiled expression.
enum ProjPlan<'e> {
    Position(usize),
    Expr(SiteExpr<'e>),
}

fn projection_plans<'e>(
    db: &Database,
    mode: ExecutionMode,
    bindings: &[RelationBinding],
    projections: &'e [(String, ProjectionSource)],
) -> Vec<ProjPlan<'e>> {
    let compiled = db.config.eval == crate::config::EvalStrategy::Compiled;
    projections
        .iter()
        .map(|(_, source)| match source {
            ProjectionSource::Position(i) => ProjPlan::Position(*i),
            ProjectionSource::Expr(e) => {
                // Plain column projections that bind locally need no closure
                // at all: a pre-resolved offset copy is exactly what the
                // compiled column plan would do per row. Columns that do not
                // bind locally (correlated references) fall through to the
                // compiled plan, which defers to the parent scope at
                // evaluation time.
                if compiled {
                    if let Expr::Column(c) = e {
                        if let Some(i) = crate::compile::local_column_offset(bindings, c) {
                            return ProjPlan::Position(i);
                        }
                    }
                }
                ProjPlan::Expr(SiteExpr::new(db, mode, bindings, e))
            }
        })
        .collect()
}

fn project_rows(
    db: &Database,
    select: &Select,
    mode: ExecutionMode,
    relation: &Relation<'_>,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Produced> {
    db.record_coverage(|cov| cov.plan_operator("projection"));
    let projections = expand_projections(select, &relation.bindings)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let evaluator = Evaluator::new(db, mode);
    // Per-statement plans: projection expressions and ORDER BY keys are
    // compiled once, then run per row.
    let plans = projection_plans(db, mode, &relation.bindings, &projections);
    let order_plan = OrderPlan::new(db, select, mode, &relation.bindings, &columns);
    let mut rows = Vec::with_capacity(relation.rows.len());
    for row in relation.rows.iter() {
        let scope = Scope {
            relations: &relation.bindings,
            row,
            parent: outer,
        };
        let mut out_row = Vec::with_capacity(plans.len());
        for plan in &plans {
            let v = match plan {
                ProjPlan::Position(i) => row.get(*i).cloned().unwrap_or(Value::Null),
                ProjPlan::Expr(e) => e.eval(&evaluator, &scope)?,
            };
            out_row.push(v);
        }
        let order_keys = order_plan.keys(&evaluator, &scope, &out_row)?;
        rows.push((out_row, order_keys));
    }
    Ok(Produced { columns, rows })
}

// ----------------------------------------------------------- aggregation ----

fn collect_aggregate_exprs(select: &Select) -> Vec<Expr> {
    fn walk(expr: &Expr, out: &mut Vec<Expr>) {
        if let Expr::Aggregate { .. } = expr {
            out.push(expr.clone());
            return;
        }
        for c in expr.children() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut out);
        }
    }
    if let Some(h) = &select.having {
        walk(h, &mut out);
    }
    for o in &select.order_by {
        walk(&o.expr, &mut out);
    }
    out
}

/// One aggregate expression's per-statement plan: its pre-rendered lookup
/// key (the tree walker re-renders this per row; here it is rendered once)
/// and its compiled argument.
struct AggPlan<'e> {
    key: String,
    func: AggregateFunction,
    arg: Option<SiteExpr<'e>>,
    distinct: bool,
}

impl<'e> AggPlan<'e> {
    fn new(
        db: &Database,
        mode: ExecutionMode,
        bindings: &[RelationBinding],
        agg: &'e Expr,
    ) -> EngineResult<AggPlan<'e>> {
        let Expr::Aggregate {
            func,
            arg,
            distinct,
        } = agg
        else {
            return Err(EngineError::runtime("not an aggregate expression"));
        };
        Ok(AggPlan {
            key: agg.to_string(),
            func: *func,
            arg: arg.as_deref().map(|a| SiteExpr::new(db, mode, bindings, a)),
            distinct: *distinct,
        })
    }
}

fn compute_aggregate(
    db: &Database,
    mode: ExecutionMode,
    evaluator: &Evaluator<'_>,
    plan: &AggPlan<'_>,
    bindings: &[RelationBinding],
    group_rows: &[Row],
    outer: Option<&Scope<'_>>,
) -> EngineResult<Value> {
    let func = plan.func;
    db.record_coverage(|cov| {
        cov.plan_operator("aggregate");
        cov.function(func.name());
    });
    let faults = &db.config.faults;
    let optimized = mode == ExecutionMode::Optimized;

    // Evaluate the argument per row (or count rows for COUNT(*)).
    let mut values: Vec<Value> = Vec::new();
    for row in group_rows {
        let scope = Scope {
            relations: bindings,
            row,
            parent: outer,
        };
        match &plan.arg {
            None => values.push(Value::Integer(1)),
            Some(a) => values.push(a.eval(evaluator, &scope)?),
        }
    }
    if plan.distinct {
        let mut seen = BTreeSet::new();
        values.retain(|v| seen.insert(v.dedup_key()));
    }
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    Ok(match func {
        AggregateFunction::Count => {
            if plan.arg.is_none() {
                Value::Integer(group_rows.len() as i64)
            } else if optimized && faults.bad_count_nulls {
                // Injected fault: COUNT(col) counts NULLs.
                Value::Integer(values.len() as i64)
            } else {
                Value::Integer(non_null.len() as i64)
            }
        }
        AggregateFunction::Sum => {
            if non_null.is_empty() {
                if optimized && faults.bad_sum_empty_group {
                    // Injected fault: SUM over no rows yields 0 instead of NULL.
                    Value::Integer(0)
                } else {
                    Value::Null
                }
            } else {
                sum_values(&non_null)
            }
        }
        AggregateFunction::Total => {
            if non_null.is_empty() {
                Value::Real(0.0)
            } else {
                let s: f64 = non_null.iter().map(|v| v.coerce_f64().unwrap_or(0.0)).sum();
                Value::Real(s)
            }
        }
        AggregateFunction::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let s: f64 = non_null.iter().map(|v| v.coerce_f64().unwrap_or(0.0)).sum();
                Value::Real(s / non_null.len() as f64)
            }
        }
        AggregateFunction::Min => non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggregateFunction::Max => non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
    })
}

fn sum_values(non_null: &[&Value]) -> Value {
    let all_int = non_null
        .iter()
        .all(|v| matches!(v, Value::Integer(_) | Value::Boolean(_)));
    if all_int {
        Value::Integer(non_null.iter().map(|v| v.coerce_i64().unwrap_or(0)).sum())
    } else {
        Value::Real(non_null.iter().map(|v| v.coerce_f64().unwrap_or(0.0)).sum())
    }
}

fn aggregate_and_project(
    db: &Database,
    select: &Select,
    mode: ExecutionMode,
    relation: &Relation<'_>,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Produced> {
    db.record_coverage(|cov| cov.plan_operator("group_by"));
    let evaluator = Evaluator::new(db, mode);
    let faults = &db.config.faults;
    let optimized = mode == ExecutionMode::Optimized;

    // Strict typing requires every non-aggregate projection to be a grouping
    // expression.
    if db.config.typing == TypingMode::Strict {
        let group_keys: BTreeSet<String> = select.group_by.iter().map(Expr::to_string).collect();
        for item in &select.projections {
            match item {
                SelectItem::Expr { expr, .. } => {
                    if !expr.contains_aggregate()
                        && !group_keys.contains(&expr.to_string())
                        && !matches!(expr, Expr::Literal(_))
                    {
                        return Err(EngineError::type_error(format!(
                            "column \"{expr}\" must appear in the GROUP BY clause or be used in an aggregate function"
                        )));
                    }
                }
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(EngineError::type_error(
                        "SELECT * is not allowed in an aggregate query",
                    ));
                }
            }
        }
    }

    // Group rows. Grouping keys are compiled once and evaluated per row.
    let mut groups: BTreeMap<Vec<String>, Vec<Row>> = BTreeMap::new();
    if select.group_by.is_empty() {
        groups.insert(Vec::new(), relation.rows.to_vec());
    } else {
        let group_plans: Vec<SiteExpr<'_>> = select
            .group_by
            .iter()
            .map(|g| SiteExpr::new(db, mode, &relation.bindings, g))
            .collect();
        for row in relation.rows.iter() {
            let scope = Scope {
                relations: &relation.bindings,
                row,
                parent: outer,
            };
            let mut key = Vec::with_capacity(group_plans.len());
            for g in &group_plans {
                let v = g.eval(&evaluator, &scope)?;
                let mut k = v.dedup_key();
                if optimized && faults.bad_group_by_collation {
                    // Injected fault: text grouping keys compare
                    // case-insensitively.
                    k = k.to_lowercase();
                }
                key.push(k);
            }
            groups.entry(key).or_default().push(row.clone());
        }
    }

    // `SELECT COUNT(*) FROM t` fast path answered from stale statistics.
    if optimized && faults.bad_stale_count_statistics {
        if let Some(stale) = stale_count_shortcut(db, select) {
            return Ok(Produced {
                columns: vec![output_name(&select.projections[0], 0).unwrap_or_default()],
                rows: vec![(vec![Value::Integer(stale as i64)], Vec::new())],
            });
        }
    }

    let aggregate_exprs = collect_aggregate_exprs(select);
    let projections = expand_projections(select, &relation.bindings)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let empty_row: Row = vec![Value::Null; relation.width()];

    // Per-statement plans shared by every group: aggregate arguments, the
    // HAVING predicate, projection expressions and ORDER BY keys.
    let agg_plans: Vec<AggPlan<'_>> = aggregate_exprs
        .iter()
        .map(|agg| AggPlan::new(db, mode, &relation.bindings, agg))
        .collect::<EngineResult<_>>()?;
    let having_plan = select
        .having
        .as_ref()
        .map(|h| SiteExpr::new(db, mode, &relation.bindings, h));
    let proj_plans = projection_plans(db, mode, &relation.bindings, &projections);
    let order_plan = OrderPlan::new(db, select, mode, &relation.bindings, &columns);

    let mut rows = Vec::new();
    for (_, group_rows) in groups {
        // Aggregate values for this group.
        let mut agg_values: BTreeMap<String, Value> = BTreeMap::new();
        for plan in &agg_plans {
            let v = compute_aggregate(
                db,
                mode,
                &evaluator,
                plan,
                &relation.bindings,
                &group_rows,
                outer,
            )?;
            agg_values.insert(plan.key.clone(), v);
        }
        let representative = group_rows
            .first()
            .cloned()
            .unwrap_or_else(|| empty_row.clone());
        let scope = Scope {
            relations: &relation.bindings,
            row: &representative,
            parent: outer,
        };
        let group_evaluator = Evaluator::with_aggregates(db, mode, Some(&agg_values));
        // HAVING filter.
        if let Some(having) = &having_plan {
            if !having.eval_truth(&group_evaluator, &scope)?.is_true() {
                continue;
            }
        }
        let mut out_row = Vec::with_capacity(proj_plans.len());
        for plan in &proj_plans {
            let v = match plan {
                ProjPlan::Position(i) => representative.get(*i).cloned().unwrap_or(Value::Null),
                ProjPlan::Expr(e) => e.eval(&group_evaluator, &scope)?,
            };
            out_row.push(v);
        }
        let order_keys = order_plan.keys(&group_evaluator, &scope, &out_row)?;
        rows.push((out_row, order_keys));
    }
    Ok(Produced { columns, rows })
}

/// Detects the `SELECT COUNT(*) FROM <single table>` shape and returns the
/// stale statistics count if statistics exist.
fn stale_count_shortcut(db: &Database, select: &Select) -> Option<usize> {
    if select.where_clause.is_some()
        || !select.group_by.is_empty()
        || select.having.is_some()
        || select.projections.len() != 1
        || select.from.len() != 1
        || !select.from[0].joins.is_empty()
    {
        return None;
    }
    let is_count_star = matches!(
        &select.projections[0],
        SelectItem::Expr {
            expr: Expr::Aggregate {
                func: AggregateFunction::Count,
                arg: None,
                ..
            },
            ..
        }
    );
    if !is_count_star {
        return None;
    }
    match &select.from[0].relation {
        TableFactor::Table { name, .. } => db.stats(name).map(|s| s.row_count),
        TableFactor::Derived { .. } => None,
    }
}

// ---------------------------------------------------------------- sorting ----

/// Per-statement plan for a row's ORDER BY keys. Ordinal and output-column
/// references are resolved to output positions once; everything else is a
/// compiled expression evaluated against the input scope — the tree walker
/// re-ran this whole resolution (and built a fresh evaluator) per row.
struct OrderPlan<'e> {
    items: Vec<OrderKeySource<'e>>,
}

enum OrderKeySource<'e> {
    /// The key is a copy of an output column.
    Output(usize),
    /// The key is computed from the input row.
    Eval(SiteExpr<'e>),
}

impl<'e> OrderPlan<'e> {
    fn new(
        db: &Database,
        select: &'e Select,
        mode: ExecutionMode,
        bindings: &[RelationBinding],
        columns: &[String],
    ) -> OrderPlan<'e> {
        if select.order_by.is_empty() || select.set_op.is_some() {
            return OrderPlan { items: Vec::new() };
        }
        let items = select
            .order_by
            .iter()
            .map(|item| match &item.expr {
                Expr::Literal(Value::Integer(n)) if *n >= 1 && (*n as usize) <= columns.len() => {
                    OrderKeySource::Output((*n - 1) as usize)
                }
                Expr::Column(c) if c.table.is_none() => {
                    match columns
                        .iter()
                        .position(|name| name.eq_ignore_ascii_case(&c.column))
                    {
                        Some(i) => OrderKeySource::Output(i),
                        None => OrderKeySource::Eval(SiteExpr::new(db, mode, bindings, &item.expr)),
                    }
                }
                _ => OrderKeySource::Eval(SiteExpr::new(db, mode, bindings, &item.expr)),
            })
            .collect();
        OrderPlan { items }
    }

    fn keys(
        &self,
        evaluator: &Evaluator<'_>,
        scope: &Scope<'_>,
        out_row: &[Value],
    ) -> EngineResult<Vec<Value>> {
        let mut keys = Vec::with_capacity(self.items.len());
        for item in &self.items {
            keys.push(match item {
                OrderKeySource::Output(i) => out_row[*i].clone(),
                OrderKeySource::Eval(plan) => plan.eval(evaluator, scope)?,
            });
        }
        Ok(keys)
    }
}

fn sort_rows(db: &Database, select: &Select, produced: &mut Produced) -> EngineResult<()> {
    // When keys were not computed per row (set operations), resolve them
    // from the output row by ordinal or column name.
    if produced
        .rows
        .iter()
        .any(|(_, k)| k.len() != select.order_by.len())
    {
        let columns = produced.columns.clone();
        for (row, keys) in &mut produced.rows {
            keys.clear();
            for item in &select.order_by {
                let v = match &item.expr {
                    Expr::Literal(Value::Integer(n)) if *n >= 1 && (*n as usize) <= row.len() => {
                        row[(*n - 1) as usize].clone()
                    }
                    Expr::Column(c) if c.table.is_none() => {
                        match columns
                            .iter()
                            .position(|name| name.eq_ignore_ascii_case(&c.column))
                        {
                            Some(i) => row[i].clone(),
                            None => {
                                return Err(EngineError::catalog(format!(
                                    "ORDER BY column {} not in result set",
                                    c.column
                                )))
                            }
                        }
                    }
                    _ => return Err(EngineError::unsupported(
                        "ORDER BY expression must reference an output column in a compound query",
                    )),
                };
                keys.push(v);
            }
        }
    }
    let _ = db;
    let directions: Vec<SortOrder> = select.order_by.iter().map(|o| o.order).collect();
    produced.rows.sort_by(|(_, a), (_, b)| {
        for (i, dir) in directions.iter().enumerate() {
            let av = a.get(i).cloned().unwrap_or(Value::Null);
            let bv = b.get(i).cloned().unwrap_or(Value::Null);
            let ord = av.total_cmp(&bv);
            let ord = match dir {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

// ------------------------------------------------------------- set ops ----

fn combine_set_op(left: Produced, right: ResultSet, op: SetOperator, all: bool) -> Produced {
    let key = |row: &Row| -> String {
        row.iter()
            .map(Value::dedup_key)
            .collect::<Vec<_>>()
            .join("\u{1}")
    };
    let left_rows: Vec<Row> = left.rows.into_iter().map(|(r, _)| r).collect();
    let mut out: Vec<Row> = Vec::new();
    match op {
        SetOperator::Union => {
            out.extend(left_rows);
            out.extend(right.rows);
            if !all {
                let mut seen = BTreeSet::new();
                out.retain(|r| seen.insert(key(r)));
            }
        }
        SetOperator::Intersect => {
            let right_keys: BTreeSet<String> = right.rows.iter().map(&key).collect();
            out = left_rows
                .into_iter()
                .filter(|r| right_keys.contains(&key(r)))
                .collect();
            if !all {
                let mut seen = BTreeSet::new();
                out.retain(|r| seen.insert(key(r)));
            }
        }
        SetOperator::Except => {
            let right_keys: BTreeSet<String> = right.rows.iter().map(&key).collect();
            out = left_rows
                .into_iter()
                .filter(|r| !right_keys.contains(&key(r)))
                .collect();
            if !all {
                let mut seen = BTreeSet::new();
                out.retain(|r| seen.insert(key(r)));
            }
        }
    }
    Produced {
        columns: left.columns,
        rows: out.into_iter().map(|r| (r, Vec::new())).collect(),
    }
}
