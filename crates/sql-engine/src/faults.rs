//! Fault-injection switches for the engine.
//!
//! The paper evaluates SQLancer++ against real DBMSs containing real,
//! unknown logic bugs. A self-contained reproduction needs a substitute:
//! each field of [`FaultConfig`] enables one *injected logic bug* at a
//! specific point in the engine (an optimizer rewrite, an index access path,
//! a scalar function, a coercion rule). Several of the faults are modeled
//! directly on bugs discussed in the paper (the SQLite `REPLACE` affinity
//! bug of Listing 2, the `ON`→`WHERE` flattening bug of Listing 3, the TiDB
//! `~` bug, ...).
//!
//! All faults default to *off*; `dbms-sim` turns subsets on per simulated
//! dialect and records, for each fault, a ground-truth bug identifier and
//! the SQL features involved — which is what makes Table 5-style
//! "unique bugs" measurable.

/// Switches enabling individual injected logic bugs. All default to `false`
/// (a correct engine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)]
pub struct FaultConfig {
    // ---- optimizer / rewrite faults (detected by TLP and NoREC) ----
    /// `NOT (a = b)` is rewritten to `a != b`, dropping the `NULL` case.
    pub bad_not_elimination: bool,
    /// `NOT (a < b)` is rewritten to `a > b` (instead of `a >= b`).
    pub bad_range_negation: bool,
    /// A `WHERE` predicate is pushed below a `LEFT JOIN` into the `ON`
    /// clause, changing which rows survive the join.
    pub bad_predicate_pushdown: bool,
    /// An `ON` clause term of an outer join is flattened into the `WHERE`
    /// clause (the SQLite query-flattener bug of Listing 3).
    pub bad_join_flattening: bool,
    /// Constant folding treats the text literal `'0'` as false/0 even under
    /// strict typing where it should be an error or distinct value.
    pub bad_constant_folding_text: bool,
    /// `x IS NULL` on a column declared `NOT NULL` is folded to `FALSE`,
    /// even when outer joins can still introduce `NULL`s for that column.
    pub bad_notnull_isnull_folding: bool,
    /// `x IN (a, b, ...)` is rewritten into an equality chain that ignores
    /// `NULL` list elements.
    pub bad_in_list_rewrite: bool,
    /// `BETWEEN` is rewritten with the bounds swapped when both bounds are
    /// literals and the lower bound is greater (should yield empty instead).
    pub bad_between_rewrite: bool,
    /// `DISTINCT` is dropped when an equality predicate on a unique column
    /// is present — wrong when the predicate involves coercion.
    pub bad_distinct_elimination: bool,
    /// `LIMIT` is pushed below an outer join, truncating rows too early.
    pub bad_limit_pushdown: bool,
    /// Expressions of the form `x <=> y` are rewritten to `x = y`,
    /// losing null-safety.
    pub bad_nullsafe_eq_rewrite: bool,
    /// `CASE WHEN p THEN a ELSE b END` with a constant-true `p` is folded to
    /// `a` even when `p` actually evaluates to `NULL` at runtime.
    pub bad_case_folding: bool,

    // ---- access-path faults (detected primarily by NoREC) ----
    /// Index equality lookups skip text→numeric coercion, missing rows that
    /// a full scan (and the reference executor) would return.
    pub bad_index_lookup_coercion: bool,
    /// Unique-index lookups return at most one row even when the residual
    /// predicate matches more rows.
    pub bad_unique_index_shortcut: bool,
    /// Partial-index lookups ignore the index predicate, returning rows the
    /// index does not actually cover.
    pub bad_partial_index_scan: bool,
    /// After `ANALYZE`, `COUNT(*)` without predicates is answered from stale
    /// statistics instead of the table data.
    pub bad_stale_count_statistics: bool,

    // ---- evaluation faults (detected by TLP through inconsistency) ----
    /// `REPLACE` returns its first argument unconverted when it is numeric
    /// (the 10-year-old SQLite bug of Listing 2): comparisons against text
    /// columns then behave inconsistently between optimized and reference
    /// paths.
    pub bad_replace_type_affinity: bool,
    /// Bitwise inversion `~x` mishandles negative inputs (the TiDB bug cited
    /// in the paper's discussion section).
    pub bad_bitwise_inversion: bool,
    /// `NULLIF(a, b)` compares with plain equality and returns `a` when the
    /// comparison is `NULL` instead of returning `a` only when it is
    /// not-equal (subtly wrong for `NULL` arguments) — but only in the
    /// optimized path's constant-argument fast path.
    pub bad_nullif_null_handling: bool,
    /// String comparison in the optimized path compares case-insensitively.
    pub bad_collation_comparison: bool,
    /// `LIKE` treats `_` as a literal underscore in the optimized prefix
    /// fast path.
    pub bad_like_underscore: bool,
    /// Integer division in the optimized path rounds instead of truncating.
    pub bad_integer_division: bool,
    /// Text-to-integer coercion in the optimized comparison path parses only
    /// leading digits and ignores a leading minus sign.
    pub bad_text_coercion_sign: bool,

    // ---- aggregation / view faults ----
    /// `SUM` over an empty group returns `0` instead of `NULL` (only in the
    /// optimized path).
    pub bad_sum_empty_group: bool,
    /// `COUNT(col)` counts `NULL`s (only in the optimized path).
    pub bad_count_nulls: bool,
    /// View expansion drops the view's own `WHERE` predicate.
    pub bad_view_predicate_drop: bool,
    /// `GROUP BY` on a text key groups case-insensitively in the optimized
    /// path.
    pub bad_group_by_collation: bool,
    /// `HAVING` predicates are evaluated before grouping in the optimized
    /// path when they reference no aggregate.
    pub bad_having_pushdown: bool,

    // ---- transaction faults (detected by the rollback oracle) ----
    /// `ROLLBACK` discards the undo log without applying it, leaving every
    /// write of the transaction in place — the transaction effectively
    /// commits ("lost rollback").
    pub txn_lost_rollback: bool,
    /// `COMMIT` applies the undo log before discarding it, silently throwing
    /// the transaction's writes away — the commit reports success but the
    /// data never lands ("phantom commit").
    pub txn_phantom_commit: bool,
    /// `ROLLBACK TO SAVEPOINT` rewinds to the start of the transaction
    /// instead of to the named savepoint, collapsing the whole savepoint
    /// stack ("savepoint collapse").
    pub txn_savepoint_collapse: bool,

    // ---- isolation faults (concurrent sessions; detected by the
    // ---- isolation oracle) ----
    /// A transaction's begin-time snapshot includes the *uncommitted*
    /// writes of other open sessions ("dirty read"): data another session
    /// later rolls back can leak into a committed transaction.
    pub iso_dirty_read: bool,
    /// `COMMIT` skips first-committer-wins conflict validation: the later
    /// committer blindly installs its snapshot-based writes, silently
    /// clobbering a concurrent committed update to the same table
    /// ("lost update").
    pub iso_lost_update: bool,
    /// Inside a transaction, tables the session has not itself written are
    /// re-read from the latest *committed* state at every statement instead
    /// of from the begin snapshot — read-committed visibility masquerading
    /// as snapshot isolation ("non-repeatable read").
    pub iso_nonrepeatable_read: bool,

    // ---- "other bug" faults (crashes / internal errors, not logic bugs) ----
    /// Deeply nested expressions (depth > 2) above a size threshold cause an
    /// internal error, modelling the paper's non-logic "unexpected error"
    /// bug class.
    pub crash_on_deep_expressions: bool,
    /// Queries touching more than two relations intermittently fail with an
    /// internal error, modelling connection/OOM-style failures (CrateDB ran
    /// out of memory during the paper's experiments).
    pub crash_on_many_joins: bool,
}

impl FaultConfig {
    /// A configuration with every fault disabled (a correct engine).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Whether any fault that [`crate::optimizer`]'s
    /// `apply_structural_faults` can apply is enabled — the gate for
    /// `optimize_select`'s clone-free fast path. Keep in sync with the
    /// faults that function reads.
    pub fn has_structural_rewrite(&self) -> bool {
        self.bad_predicate_pushdown
            || self.bad_join_flattening
            || self.bad_distinct_elimination
            || self.bad_having_pushdown
    }

    /// Returns the number of enabled faults.
    pub fn enabled_count(&self) -> usize {
        self.enabled_names().len()
    }

    /// Returns the names of all enabled faults (stable, snake_case).
    pub fn enabled_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (name, on) in self.iter_flags() {
            if on {
                out.push(name);
            }
        }
        out
    }

    /// Packs every fault flag into a bitset, in the stable order of
    /// [`FaultConfig::iter_flags`] (a unit test keeps the two in sync).
    /// Allocation-free; the compiled-plan cache key mixes this in so an
    /// in-place configuration change can never serve a stale plan.
    pub fn bits(&self) -> u64 {
        let flags = [
            self.bad_not_elimination,
            self.bad_range_negation,
            self.bad_predicate_pushdown,
            self.bad_join_flattening,
            self.bad_constant_folding_text,
            self.bad_notnull_isnull_folding,
            self.bad_in_list_rewrite,
            self.bad_between_rewrite,
            self.bad_distinct_elimination,
            self.bad_limit_pushdown,
            self.bad_nullsafe_eq_rewrite,
            self.bad_case_folding,
            self.bad_index_lookup_coercion,
            self.bad_unique_index_shortcut,
            self.bad_partial_index_scan,
            self.bad_stale_count_statistics,
            self.bad_replace_type_affinity,
            self.bad_bitwise_inversion,
            self.bad_nullif_null_handling,
            self.bad_collation_comparison,
            self.bad_like_underscore,
            self.bad_integer_division,
            self.bad_text_coercion_sign,
            self.bad_sum_empty_group,
            self.bad_count_nulls,
            self.bad_view_predicate_drop,
            self.bad_group_by_collation,
            self.bad_having_pushdown,
            self.txn_lost_rollback,
            self.txn_phantom_commit,
            self.txn_savepoint_collapse,
            self.iso_dirty_read,
            self.iso_lost_update,
            self.iso_nonrepeatable_read,
            self.crash_on_deep_expressions,
            self.crash_on_many_joins,
        ];
        flags
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &on)| acc | (u64::from(on) << i))
    }

    /// Iterates over `(name, enabled)` pairs for every fault flag.
    pub fn iter_flags(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("bad_not_elimination", self.bad_not_elimination),
            ("bad_range_negation", self.bad_range_negation),
            ("bad_predicate_pushdown", self.bad_predicate_pushdown),
            ("bad_join_flattening", self.bad_join_flattening),
            ("bad_constant_folding_text", self.bad_constant_folding_text),
            (
                "bad_notnull_isnull_folding",
                self.bad_notnull_isnull_folding,
            ),
            ("bad_in_list_rewrite", self.bad_in_list_rewrite),
            ("bad_between_rewrite", self.bad_between_rewrite),
            ("bad_distinct_elimination", self.bad_distinct_elimination),
            ("bad_limit_pushdown", self.bad_limit_pushdown),
            ("bad_nullsafe_eq_rewrite", self.bad_nullsafe_eq_rewrite),
            ("bad_case_folding", self.bad_case_folding),
            ("bad_index_lookup_coercion", self.bad_index_lookup_coercion),
            ("bad_unique_index_shortcut", self.bad_unique_index_shortcut),
            ("bad_partial_index_scan", self.bad_partial_index_scan),
            (
                "bad_stale_count_statistics",
                self.bad_stale_count_statistics,
            ),
            ("bad_replace_type_affinity", self.bad_replace_type_affinity),
            ("bad_bitwise_inversion", self.bad_bitwise_inversion),
            ("bad_nullif_null_handling", self.bad_nullif_null_handling),
            ("bad_collation_comparison", self.bad_collation_comparison),
            ("bad_like_underscore", self.bad_like_underscore),
            ("bad_integer_division", self.bad_integer_division),
            ("bad_text_coercion_sign", self.bad_text_coercion_sign),
            ("bad_sum_empty_group", self.bad_sum_empty_group),
            ("bad_count_nulls", self.bad_count_nulls),
            ("bad_view_predicate_drop", self.bad_view_predicate_drop),
            ("bad_group_by_collation", self.bad_group_by_collation),
            ("bad_having_pushdown", self.bad_having_pushdown),
            ("txn_lost_rollback", self.txn_lost_rollback),
            ("txn_phantom_commit", self.txn_phantom_commit),
            ("txn_savepoint_collapse", self.txn_savepoint_collapse),
            ("iso_dirty_read", self.iso_dirty_read),
            ("iso_lost_update", self.iso_lost_update),
            ("iso_nonrepeatable_read", self.iso_nonrepeatable_read),
            ("crash_on_deep_expressions", self.crash_on_deep_expressions),
            ("crash_on_many_joins", self.crash_on_many_joins),
        ]
    }

    /// Enables a fault by name. Returns `false` if the name is unknown.
    pub fn enable(&mut self, name: &str) -> bool {
        match name {
            "bad_not_elimination" => self.bad_not_elimination = true,
            "bad_range_negation" => self.bad_range_negation = true,
            "bad_predicate_pushdown" => self.bad_predicate_pushdown = true,
            "bad_join_flattening" => self.bad_join_flattening = true,
            "bad_constant_folding_text" => self.bad_constant_folding_text = true,
            "bad_notnull_isnull_folding" => self.bad_notnull_isnull_folding = true,
            "bad_in_list_rewrite" => self.bad_in_list_rewrite = true,
            "bad_between_rewrite" => self.bad_between_rewrite = true,
            "bad_distinct_elimination" => self.bad_distinct_elimination = true,
            "bad_limit_pushdown" => self.bad_limit_pushdown = true,
            "bad_nullsafe_eq_rewrite" => self.bad_nullsafe_eq_rewrite = true,
            "bad_case_folding" => self.bad_case_folding = true,
            "bad_index_lookup_coercion" => self.bad_index_lookup_coercion = true,
            "bad_unique_index_shortcut" => self.bad_unique_index_shortcut = true,
            "bad_partial_index_scan" => self.bad_partial_index_scan = true,
            "bad_stale_count_statistics" => self.bad_stale_count_statistics = true,
            "bad_replace_type_affinity" => self.bad_replace_type_affinity = true,
            "bad_bitwise_inversion" => self.bad_bitwise_inversion = true,
            "bad_nullif_null_handling" => self.bad_nullif_null_handling = true,
            "bad_collation_comparison" => self.bad_collation_comparison = true,
            "bad_like_underscore" => self.bad_like_underscore = true,
            "bad_integer_division" => self.bad_integer_division = true,
            "bad_text_coercion_sign" => self.bad_text_coercion_sign = true,
            "bad_sum_empty_group" => self.bad_sum_empty_group = true,
            "bad_count_nulls" => self.bad_count_nulls = true,
            "bad_view_predicate_drop" => self.bad_view_predicate_drop = true,
            "bad_group_by_collation" => self.bad_group_by_collation = true,
            "bad_having_pushdown" => self.bad_having_pushdown = true,
            "txn_lost_rollback" => self.txn_lost_rollback = true,
            "txn_phantom_commit" => self.txn_phantom_commit = true,
            "txn_savepoint_collapse" => self.txn_savepoint_collapse = true,
            "iso_dirty_read" => self.iso_dirty_read = true,
            "iso_lost_update" => self.iso_lost_update = true,
            "iso_nonrepeatable_read" => self.iso_nonrepeatable_read = true,
            "crash_on_deep_expressions" => self.crash_on_deep_expressions = true,
            "crash_on_many_joins" => self.crash_on_many_joins = true,
            _ => return false,
        }
        true
    }

    /// All known fault names.
    pub fn all_names() -> Vec<&'static str> {
        FaultConfig::default()
            .iter_flags()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_is_fault_free() {
        assert_eq!(FaultConfig::none().enabled_count(), 0);
    }

    #[test]
    fn enable_by_name_round_trips() {
        let mut cfg = FaultConfig::none();
        for name in FaultConfig::all_names() {
            assert!(cfg.enable(name), "{name} should be known");
        }
        assert_eq!(cfg.enabled_count(), FaultConfig::all_names().len());
        assert!(!cfg.enable("no_such_fault"));
    }

    #[test]
    fn names_are_unique_and_plentiful() {
        let names = FaultConfig::all_names();
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(
            names.len() >= 30,
            "need a rich bug catalog, got {}",
            names.len()
        );
    }

    #[test]
    fn bits_agree_with_iter_flags_for_every_single_fault() {
        assert_eq!(FaultConfig::none().bits(), 0);
        for (i, name) in FaultConfig::all_names().into_iter().enumerate() {
            let mut cfg = FaultConfig::none();
            cfg.enable(name);
            assert_eq!(cfg.bits(), 1u64 << i, "bit order diverges at {name}");
            let flagged = cfg.iter_flags().iter().position(|(_, on)| *on);
            assert_eq!(flagged, Some(i), "iter_flags order diverges at {name}");
        }
    }
}
