//! Engine error type.

use std::error::Error;
use std::fmt;

/// The broad class of an engine error.
///
/// The adaptive generator never inspects these classes (it only observes
/// "the statement failed"), but the simulated DBMS fleet uses them to shape
/// realistic error messages, and tests use them to assert on behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Unknown table, column, index or view; duplicate object names.
    Catalog,
    /// Type errors under the strict typing discipline.
    Type,
    /// Constraint violations (PRIMARY KEY, UNIQUE, NOT NULL).
    Constraint,
    /// A feature the engine itself does not implement.
    Unsupported,
    /// Runtime errors such as division by zero under strict semantics or a
    /// scalar subquery returning more than one row.
    Runtime,
}

impl ErrorKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Catalog => "catalog error",
            ErrorKind::Type => "type error",
            ErrorKind::Constraint => "constraint violation",
            ErrorKind::Unsupported => "unsupported feature",
            ErrorKind::Runtime => "runtime error",
        }
    }
}

/// An error produced while executing a statement against the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Error class.
    pub kind: ErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl EngineError {
    /// Creates a new error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> EngineError {
        EngineError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for a catalog error.
    pub fn catalog(message: impl Into<String>) -> EngineError {
        EngineError::new(ErrorKind::Catalog, message)
    }

    /// Shorthand for a type error.
    pub fn type_error(message: impl Into<String>) -> EngineError {
        EngineError::new(ErrorKind::Type, message)
    }

    /// Shorthand for a constraint violation.
    pub fn constraint(message: impl Into<String>) -> EngineError {
        EngineError::new(ErrorKind::Constraint, message)
    }

    /// Shorthand for an unsupported feature.
    pub fn unsupported(message: impl Into<String>) -> EngineError {
        EngineError::new(ErrorKind::Unsupported, message)
    }

    /// Shorthand for a runtime error.
    pub fn runtime(message: impl Into<String>) -> EngineError {
        EngineError::new(ErrorKind::Runtime, message)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl Error for EngineError {}

/// Convenient result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = EngineError::type_error("cannot add TEXT and BOOLEAN");
        assert_eq!(e.to_string(), "type error: cannot add TEXT and BOOLEAN");
        assert_eq!(e.kind, ErrorKind::Type);
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(EngineError::catalog("x").kind, ErrorKind::Catalog);
        assert_eq!(EngineError::constraint("x").kind, ErrorKind::Constraint);
        assert_eq!(EngineError::unsupported("x").kind, ErrorKind::Unsupported);
        assert_eq!(EngineError::runtime("x").kind, ErrorKind::Runtime);
    }
}
