//! Scalar function implementations.
//!
//! Every member of [`ScalarFunction`] is implemented here. Argument handling
//! follows the typing discipline: the dynamic mode coerces freely (SQLite
//! style), the strict mode raises type errors for ill-typed arguments
//! (PostgreSQL style) — which is exactly what makes the composite
//! `FN1TYPE`-style features of the paper (e.g. `SIN1INT`) learnable.

use crate::config::TypingMode;
use crate::error::{EngineError, EngineResult};
use crate::faults::FaultConfig;
use sql_ast::{format_real, DataType, ScalarFunction, Value};

fn null_in(args: &[Value]) -> bool {
    args.iter().any(Value::is_null)
}

fn num(v: &Value, typing: TypingMode) -> EngineResult<f64> {
    match typing {
        TypingMode::Dynamic => Ok(v.coerce_f64().unwrap_or(0.0)),
        TypingMode::Strict => v
            .as_f64_strict()
            .filter(|_| !matches!(v, Value::Boolean(_)))
            .ok_or_else(|| {
                EngineError::type_error(format!(
                    "function argument must be numeric, got {}",
                    v.data_type()
                ))
            }),
    }
}

fn int(v: &Value, typing: TypingMode) -> EngineResult<i64> {
    match typing {
        TypingMode::Dynamic => Ok(v.coerce_i64().unwrap_or(0)),
        TypingMode::Strict => match v {
            Value::Integer(i) => Ok(*i),
            _ => Err(EngineError::type_error(format!(
                "function argument must be INTEGER, got {}",
                v.data_type()
            ))),
        },
    }
}

fn text(v: &Value, typing: TypingMode) -> EngineResult<String> {
    match typing {
        TypingMode::Dynamic => Ok(v.coerce_text().unwrap_or_default()),
        TypingMode::Strict => match v {
            Value::Text(s) => Ok(s.clone()),
            _ => Err(EngineError::type_error(format!(
                "function argument must be TEXT, got {}",
                v.data_type()
            ))),
        },
    }
}

fn real(v: f64) -> Value {
    Value::Real(v)
}

fn finite(v: f64, what: &str) -> EngineResult<Value> {
    if v.is_nan() || v.is_infinite() {
        Err(EngineError::runtime(format!(
            "{what}: argument out of range"
        )))
    } else {
        Ok(real(v))
    }
}

/// Builds the arity error for calling `func` with `got` arguments.
///
/// Shared between the per-call arity check of [`eval_function`] and the
/// compiled evaluator, which performs the check once at compile time and
/// bakes the resulting error into the plan.
pub fn arity_error(func: ScalarFunction, got: usize) -> EngineError {
    EngineError::type_error(format!(
        "wrong number of arguments to {} (got {}, expected {}..={})",
        func.name(),
        got,
        func.min_args(),
        func.max_args()
    ))
}

/// Whether a function handles `NULL` arguments itself instead of
/// propagating `NULL` (a per-function constant; the compiled evaluator
/// hoists it out of the per-row path).
pub fn handles_nulls(func: ScalarFunction) -> bool {
    use ScalarFunction::*;
    matches!(
        func,
        Coalesce | Nullif | Ifnull | Nvl | Iif | IfFn | Concat | ConcatWs | Typeof
    )
}

/// Evaluates a scalar function on already-evaluated arguments.
///
/// # Errors
///
/// Returns an error for wrong arity, ill-typed arguments under strict
/// typing, or domain errors (e.g. `SQRT(-1)`, `ASIN(2)`).
pub fn eval_function(
    func: ScalarFunction,
    args: &[Value],
    typing: TypingMode,
    faults: &FaultConfig,
) -> EngineResult<Value> {
    if args.len() < func.min_args() || args.len() > func.max_args() {
        return Err(arity_error(func, args.len()));
    }
    // Conditional functions have their own NULL handling; everything else
    // propagates NULL.
    if !handles_nulls(func) && null_in(args) {
        return Ok(Value::Null);
    }
    eval_function_unchecked(func, args, typing, faults)
}

/// Evaluates a scalar function whose arity and NULL-propagation class have
/// already been checked — the direct entry the compiled evaluator dispatches
/// to after hoisting both checks to compile time.
///
/// # Errors
///
/// Returns an error for ill-typed arguments under strict typing or domain
/// errors (e.g. `SQRT(-1)`, `ASIN(2)`).
pub fn eval_function_unchecked(
    func: ScalarFunction,
    args: &[Value],
    typing: TypingMode,
    faults: &FaultConfig,
) -> EngineResult<Value> {
    use ScalarFunction::*;
    match func {
        // ---- numeric ----
        Abs => Ok(match &args[0] {
            Value::Integer(i) => Value::Integer(i.wrapping_abs()),
            other => real(num(other, typing)?.abs()),
        }),
        Sin => Ok(real(num(&args[0], typing)?.sin())),
        Cos => Ok(real(num(&args[0], typing)?.cos())),
        Tan => Ok(real(num(&args[0], typing)?.tan())),
        Asin => finite(num(&args[0], typing)?.asin(), "ASIN"),
        Acos => finite(num(&args[0], typing)?.acos(), "ACOS"),
        Atan => Ok(real(num(&args[0], typing)?.atan())),
        Atan2 => Ok(real(num(&args[0], typing)?.atan2(num(&args[1], typing)?))),
        Exp => Ok(real(num(&args[0], typing)?.exp())),
        Ln => finite(num(&args[0], typing)?.ln(), "LN"),
        Log10 => finite(num(&args[0], typing)?.log10(), "LOG10"),
        Log2 => finite(num(&args[0], typing)?.log2(), "LOG2"),
        Sqrt => finite(num(&args[0], typing)?.sqrt(), "SQRT"),
        Power => Ok(real(num(&args[0], typing)?.powf(num(&args[1], typing)?))),
        ModFn => {
            let b = num(&args[1], typing)?;
            if b == 0.0 {
                return match typing {
                    TypingMode::Dynamic => Ok(Value::Null),
                    TypingMode::Strict => Err(EngineError::runtime("division by zero")),
                };
            }
            let a = num(&args[0], typing)?;
            if matches!(args[0], Value::Integer(_)) && matches!(args[1], Value::Integer(_)) {
                Ok(Value::Integer((a as i64).wrapping_rem(b as i64)))
            } else {
                Ok(real(a % b))
            }
        }
        Floor => Ok(Value::Integer(num(&args[0], typing)?.floor() as i64)),
        Ceil => Ok(Value::Integer(num(&args[0], typing)?.ceil() as i64)),
        Round => {
            let a = num(&args[0], typing)?;
            let digits = if args.len() > 1 {
                int(&args[1], typing)?
            } else {
                0
            };
            let factor = 10f64.powi(digits.clamp(-12, 12) as i32);
            Ok(real((a * factor).round() / factor))
        }
        Sign => Ok(Value::Integer(match num(&args[0], typing)? {
            v if v > 0.0 => 1,
            v if v < 0.0 => -1,
            _ => 0,
        })),
        Radians => Ok(real(num(&args[0], typing)?.to_radians())),
        Degrees => Ok(real(num(&args[0], typing)?.to_degrees())),
        Pi => Ok(real(std::f64::consts::PI)),
        Greatest => fold_extreme(args, typing, true),
        Least => fold_extreme(args, typing, false),
        Trunc => Ok(Value::Integer(num(&args[0], typing)?.trunc() as i64)),
        // ---- string ----
        Length | CharLength => Ok(Value::Integer(
            text(&args[0], typing)?.chars().count() as i64
        )),
        Unhexable => Ok(Value::Integer(
            (text(&args[0], typing)?.chars().count() * 8) as i64,
        )),
        Upper => Ok(Value::Text(text(&args[0], typing)?.to_uppercase())),
        Lower => Ok(Value::Text(text(&args[0], typing)?.to_lowercase())),
        Trim => Ok(Value::Text(text(&args[0], typing)?.trim().to_string())),
        Ltrim => Ok(Value::Text(
            text(&args[0], typing)?.trim_start().to_string(),
        )),
        Rtrim => Ok(Value::Text(text(&args[0], typing)?.trim_end().to_string())),
        Substr | Substring => {
            let s = text(&args[0], typing)?;
            let chars: Vec<char> = s.chars().collect();
            let start = int(&args[1], typing)?;
            let len = if args.len() > 2 {
                int(&args[2], typing)?.max(0) as usize
            } else {
                chars.len()
            };
            // SQL SUBSTR is 1-based; non-positive starts clamp to the
            // beginning with the window shortened accordingly.
            let begin = if start > 0 { (start - 1) as usize } else { 0 };
            let taken: String = chars.into_iter().skip(begin).take(len).collect();
            Ok(Value::Text(taken))
        }
        Replace => {
            if faults.bad_replace_type_affinity && !matches!(args[0], Value::Text(_)) {
                // Injected fault (SQLite Listing 2): a non-text first
                // argument is returned unconverted instead of as TEXT.
                return Ok(args[0].clone());
            }
            let s = text(&args[0], typing)?;
            let from = text(&args[1], typing)?;
            let to = text(&args[2], typing)?;
            if from.is_empty() {
                return Ok(Value::Text(s));
            }
            Ok(Value::Text(s.replace(&from, &to)))
        }
        Instr | Strpos => {
            let s = text(&args[0], typing)?;
            let needle = text(&args[1], typing)?;
            let pos = if needle.is_empty() {
                1
            } else {
                s.find(&needle)
                    .map(|i| s[..i].chars().count() + 1)
                    .unwrap_or(0)
            };
            Ok(Value::Integer(pos as i64))
        }
        LeftFn => {
            let s = text(&args[0], typing)?;
            let n = int(&args[1], typing)?.max(0) as usize;
            Ok(Value::Text(s.chars().take(n).collect()))
        }
        RightFn => {
            let s = text(&args[0], typing)?;
            let n = int(&args[1], typing)?.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let skip = chars.len().saturating_sub(n);
            Ok(Value::Text(chars.into_iter().skip(skip).collect()))
        }
        Reverse => Ok(Value::Text(text(&args[0], typing)?.chars().rev().collect())),
        Repeat => {
            let s = text(&args[0], typing)?;
            let n = int(&args[1], typing)?.clamp(0, 1000) as usize;
            Ok(Value::Text(s.repeat(n)))
        }
        Concat => {
            // CONCAT skips NULLs (MySQL returns NULL, PostgreSQL skips;
            // we follow the skip behaviour, which is also what CONCAT_WS
            // does, so the two stay consistent).
            let mut out = String::new();
            for a in args {
                if !a.is_null() {
                    out.push_str(&text_lossy(a));
                }
            }
            Ok(Value::Text(out))
        }
        ConcatWs => {
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let sep = text_lossy(&args[0]);
            let parts: Vec<String> = args[1..]
                .iter()
                .filter(|a| !a.is_null())
                .map(text_lossy)
                .collect();
            Ok(Value::Text(parts.join(&sep)))
        }
        Lpad | Rpad => {
            let s = text(&args[0], typing)?;
            let n = int(&args[1], typing)?.clamp(0, 10_000) as usize;
            let pad = text(&args[2], typing)?;
            let cur = s.chars().count();
            if cur >= n {
                return Ok(Value::Text(s.chars().take(n).collect()));
            }
            if pad.is_empty() {
                return Ok(Value::Text(s));
            }
            let mut fill = String::new();
            while fill.chars().count() < n - cur {
                fill.push_str(&pad);
            }
            let fill: String = fill.chars().take(n - cur).collect();
            Ok(Value::Text(if func == Lpad {
                format!("{fill}{s}")
            } else {
                format!("{s}{fill}")
            }))
        }
        Ascii => Ok(Value::Integer(
            text(&args[0], typing)?
                .chars()
                .next()
                .map(|c| c as i64)
                .unwrap_or(0),
        )),
        Chr => {
            let code = int(&args[0], typing)?;
            let c = u32::try_from(code.clamp(1, 0x10FFFF) as u64)
                .ok()
                .and_then(char::from_u32)
                .unwrap_or('\u{FFFD}');
            Ok(Value::Text(c.to_string()))
        }
        Hex => {
            let s = text_lossy(&args[0]);
            Ok(Value::Text(
                s.bytes().map(|b| format!("{b:02X}")).collect::<String>(),
            ))
        }
        Space => {
            let n = int(&args[0], typing)?.clamp(0, 10_000) as usize;
            Ok(Value::Text(" ".repeat(n)))
        }
        Md5Stub => Ok(Value::Text(format!(
            "'{}'",
            text_lossy(&args[0]).replace('\'', "''")
        ))),
        // ---- conditional ----
        Coalesce => Ok(args
            .iter()
            .find(|a| !a.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        Nullif => {
            let equal = loose_equal(&args[0], &args[1], typing)?;
            if faults.bad_nullif_null_handling && args[1].is_null() {
                // Injected fault: a NULL second argument makes NULLIF return
                // NULL instead of the first argument.
                return Ok(Value::Null);
            }
            Ok(match equal {
                Some(true) => Value::Null,
                _ => args[0].clone(),
            })
        }
        Ifnull | Nvl => Ok(if args[0].is_null() {
            args[1].clone()
        } else {
            args[0].clone()
        }),
        Iif | IfFn => {
            let cond = match typing {
                TypingMode::Dynamic => args[0].truthiness_dynamic(),
                TypingMode::Strict => args[0]
                    .truthiness_strict()
                    .ok_or_else(|| EngineError::type_error("IIF condition must be BOOLEAN"))?,
            };
            Ok(if cond.is_true() {
                args[1].clone()
            } else {
                args[2].clone()
            })
        }
        // ---- type / introspection ----
        Typeof => Ok(Value::Text(
            match args[0].data_type() {
                DataType::Integer => "integer",
                DataType::Real => "real",
                DataType::Text => "text",
                DataType::Boolean => "boolean",
                DataType::Null => "null",
            }
            .to_string(),
        )),
        ToChar => Ok(Value::Text(text_lossy(&args[0]))),
    }
}

fn text_lossy(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Text(s) => s.clone(),
        Value::Integer(i) => i.to_string(),
        Value::Real(r) => format_real(*r),
        Value::Boolean(b) => if *b { "1" } else { "0" }.to_string(),
    }
}

fn loose_equal(a: &Value, b: &Value, typing: TypingMode) -> EngineResult<Option<bool>> {
    if a.is_null() || b.is_null() {
        return Ok(None);
    }
    match typing {
        TypingMode::Strict => {
            // NULLIF in strict mode still compares across numeric types but
            // rejects cross-family comparisons.
            let compatible = matches!(
                (a, b),
                (
                    Value::Integer(_) | Value::Real(_),
                    Value::Integer(_) | Value::Real(_)
                ) | (Value::Text(_), Value::Text(_))
                    | (Value::Boolean(_), Value::Boolean(_))
            );
            if !compatible {
                return Err(EngineError::type_error(format!(
                    "cannot compare {} with {}",
                    a.data_type(),
                    b.data_type()
                )));
            }
            Ok(Some(a.total_cmp(b) == std::cmp::Ordering::Equal))
        }
        TypingMode::Dynamic => {
            let fa = a.coerce_f64();
            let fb = b.coerce_f64();
            if a.data_type().is_numeric() || b.data_type().is_numeric() {
                Ok(Some(fa == fb))
            } else {
                Ok(Some(a.total_cmp(b) == std::cmp::Ordering::Equal))
            }
        }
    }
}

/// Shared implementation for `GREATEST` / `LEAST`.
fn fold_extreme(args: &[Value], typing: TypingMode, greatest: bool) -> EngineResult<Value> {
    let mut best: Option<f64> = None;
    let mut best_value: Option<Value> = None;
    for a in args {
        let n = num(a, typing)?;
        let better = match best {
            None => true,
            Some(b) => {
                if greatest {
                    n > b
                } else {
                    n < b
                }
            }
        };
        if better {
            best = Some(n);
            best_value = Some(a.clone());
        }
    }
    Ok(best_value.unwrap_or(Value::Null))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(func: ScalarFunction, args: &[Value]) -> EngineResult<Value> {
        eval_function(func, args, TypingMode::Dynamic, &FaultConfig::none())
    }

    fn f_strict(func: ScalarFunction, args: &[Value]) -> EngineResult<Value> {
        eval_function(func, args, TypingMode::Strict, &FaultConfig::none())
    }

    #[test]
    fn null_propagates_except_for_conditionals() {
        assert_eq!(f(ScalarFunction::Sin, &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            f(ScalarFunction::Coalesce, &[Value::Null, Value::Integer(2)]).unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            f(ScalarFunction::Ifnull, &[Value::Null, Value::Integer(7)]).unwrap(),
            Value::Integer(7)
        );
    }

    #[test]
    fn arity_is_checked() {
        assert!(f(ScalarFunction::Sin, &[]).is_err());
        assert!(f(ScalarFunction::Sin, &[Value::Integer(1), Value::Integer(2)]).is_err());
    }

    #[test]
    fn string_functions_behave() {
        assert_eq!(
            f(ScalarFunction::Upper, &[Value::text("abc")]).unwrap(),
            Value::text("ABC")
        );
        assert_eq!(
            f(
                ScalarFunction::Substr,
                &[Value::text("hello"), Value::Integer(2), Value::Integer(3)]
            )
            .unwrap(),
            Value::text("ell")
        );
        assert_eq!(
            f(
                ScalarFunction::Replace,
                &[Value::text("a b"), Value::text(" "), Value::text("0")]
            )
            .unwrap(),
            Value::text("a0b")
        );
        assert_eq!(
            f(
                ScalarFunction::Instr,
                &[Value::text("hello"), Value::text("ll")]
            )
            .unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            f(
                ScalarFunction::Lpad,
                &[Value::text("7"), Value::Integer(3), Value::text("0")]
            )
            .unwrap(),
            Value::text("007")
        );
        assert_eq!(
            f(ScalarFunction::Length, &[Value::text("héllo")]).unwrap(),
            Value::Integer(5)
        );
    }

    #[test]
    fn replace_coerces_numeric_first_argument_when_sound() {
        // Sound behaviour: REPLACE(1, ' ', 0) is the text '1'.
        assert_eq!(
            f(
                ScalarFunction::Replace,
                &[Value::Integer(1), Value::text(" "), Value::Integer(0)]
            )
            .unwrap(),
            Value::text("1")
        );
        // Injected fault: the intermediate value keeps its numeric type.
        let mut faults = FaultConfig::none();
        faults.bad_replace_type_affinity = true;
        assert_eq!(
            eval_function(
                ScalarFunction::Replace,
                &[Value::Integer(1), Value::text(" "), Value::Integer(0)],
                TypingMode::Dynamic,
                &faults
            )
            .unwrap(),
            Value::Integer(1)
        );
    }

    #[test]
    fn strict_mode_rejects_ill_typed_arguments() {
        assert!(f_strict(ScalarFunction::Sin, &[Value::text("a")]).is_err());
        assert!(f_strict(ScalarFunction::Upper, &[Value::Integer(1)]).is_err());
        assert_eq!(
            f_strict(ScalarFunction::Sin, &[Value::Integer(0)]).unwrap(),
            Value::Real(0.0)
        );
    }

    #[test]
    fn domain_errors_are_runtime_errors() {
        assert!(f(ScalarFunction::Asin, &[Value::Integer(2)]).is_err());
        assert!(f(ScalarFunction::Sqrt, &[Value::Integer(-1)]).is_err());
        assert!(f(ScalarFunction::Ln, &[Value::Integer(0)]).is_err());
    }

    #[test]
    fn conditional_functions() {
        assert_eq!(
            f(
                ScalarFunction::Nullif,
                &[Value::Integer(2), Value::Integer(2)]
            )
            .unwrap(),
            Value::Null
        );
        assert_eq!(
            f(
                ScalarFunction::Nullif,
                &[Value::Integer(2), Value::Integer(3)]
            )
            .unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            f(
                ScalarFunction::Iif,
                &[Value::Boolean(false), Value::Integer(1), Value::Integer(2)]
            )
            .unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            f(
                ScalarFunction::Greatest,
                &[Value::Integer(3), Value::Integer(9)]
            )
            .unwrap(),
            Value::Integer(9)
        );
        assert_eq!(
            f(
                ScalarFunction::Least,
                &[Value::Integer(3), Value::Integer(9)]
            )
            .unwrap(),
            Value::Integer(3)
        );
    }

    #[test]
    fn typeof_reports_storage_class() {
        assert_eq!(
            f(ScalarFunction::Typeof, &[Value::text("x")]).unwrap(),
            Value::text("text")
        );
        assert_eq!(
            f(ScalarFunction::Typeof, &[Value::Null]).unwrap(),
            Value::text("null")
        );
    }

    #[test]
    fn every_function_is_callable_with_min_arity_integers() {
        // Smoke test: no function panics on plain integer arguments in
        // dynamic mode (errors are fine, panics are not).
        for func in ScalarFunction::ALL {
            let args: Vec<Value> = (0..func.min_args())
                .map(|i| Value::Integer(i as i64 + 1))
                .collect();
            let _ = f(func, &args);
        }
    }
}
