//! The optimizing query rewriter.
//!
//! The engine executes every query through the same pipeline
//! (`exec::execute_select`); the difference between the *optimized* path and
//! the *reference* path — the distinction NoREC exploits — is that the
//! optimized path first runs the query through this rewriter and may use
//! index access paths during scanning.
//!
//! The rewriter only touches predicates in `WHERE`, `ON` and `HAVING`
//! positions, never expressions in the projection list. This mirrors real
//! optimizers (which aggressively rewrite filter predicates) and is what
//! makes the NoREC construction effective: a predicate moved into the
//! projection escapes these rewrites.
//!
//! Correct rewrites are applied unconditionally (constant folding, double
//! negation elimination, trivial conjunct removal). *Injected faults*
//! ([`crate::FaultConfig`]) add semantically wrong rewrites.

use crate::config::EngineConfig;
use crate::eval::Evaluator;
use crate::exec::ExecutionMode;
use crate::storage::Database;
use sql_ast::{BinaryOp, Expr, JoinType, Select, UnaryOp, Value};

/// Rewrites a query for optimized execution.
///
/// Returns the input query unchanged (borrowed, no clone) when no rewrite
/// can apply: no WHERE/HAVING/ON predicates to rewrite and no structural
/// fault enabled. The TLP base query (`SELECT ... FROM t` with no
/// predicate) takes this fast path on every oracle check.
pub fn optimize_select<'a>(db: &Database, select: &'a Select) -> std::borrow::Cow<'a, Select> {
    let faults = &db.config.faults;
    let has_predicates = select.where_clause.is_some()
        || select.having.is_some()
        || select
            .from
            .iter()
            .any(|twj| twj.joins.iter().any(|j| j.on.is_some()));
    let structural_faults = faults.has_structural_rewrite();
    if !has_predicates && !structural_faults {
        return std::borrow::Cow::Borrowed(select);
    }
    let mut out = select.clone();
    let config = &db.config;

    // Rewrite predicates (WHERE / ON / HAVING) recursively; subqueries in
    // FROM are optimized independently when they are executed.
    if let Some(w) = out.where_clause.take() {
        out.where_clause = Some(rewrite_predicate(db, w));
    }
    if let Some(h) = out.having.take() {
        out.having = Some(rewrite_predicate(db, h));
    }
    for twj in &mut out.from {
        for join in &mut twj.joins {
            if let Some(on) = join.on.take() {
                join.on = Some(rewrite_predicate(db, on));
            }
        }
    }

    apply_structural_faults(config, &mut out);

    // Remove a literally-TRUE WHERE clause (correct and common).
    if let Some(Expr::Literal(Value::Boolean(true))) = out.where_clause {
        out.where_clause = None;
    }
    std::borrow::Cow::Owned(out)
}

/// Structural (plan-level) faulty rewrites: predicate pushdown, join
/// flattening and LIMIT pushdown.
fn apply_structural_faults(config: &EngineConfig, select: &mut Select) {
    let faults = &config.faults;

    // Injected fault: push the WHERE predicate into the ON clause of the
    // first LEFT JOIN when the predicate references no aggregate. This is
    // wrong because the left side's rows survive an outer join regardless of
    // the ON condition.
    if faults.bad_predicate_pushdown {
        if let Some(pred) = select.where_clause.clone() {
            if !pred.contains_aggregate() && !pred.contains_subquery() {
                for twj in &mut select.from {
                    if let Some(join) = twj.joins.iter_mut().find(|j| j.join_type == JoinType::Left)
                    {
                        let existing = join.on.take();
                        join.on = Some(match existing {
                            Some(on) => on.and(pred.clone()),
                            None => pred.clone(),
                        });
                        select.where_clause = None;
                        break;
                    }
                }
            }
        }
    }

    // Injected fault (Listing 3): move the ON term of an outer join into the
    // WHERE clause, as SQLite's query flattener once did.
    if faults.bad_join_flattening {
        for twj in &mut select.from {
            for join in &mut twj.joins {
                if join.join_type.is_outer() {
                    if let Some(on) = join.on.take() {
                        let existing = select.where_clause.take();
                        select.where_clause = Some(match existing {
                            Some(w) => w.and(on),
                            None => on,
                        });
                        join.on = Some(Expr::boolean(true));
                    }
                }
            }
        }
    }

    // Injected fault: drop DISTINCT when an equality on some column is
    // present in the WHERE clause (pretending uniqueness).
    if faults.bad_distinct_elimination && select.distinct {
        if let Some(w) = &select.where_clause {
            if contains_equality_on_column(w) {
                select.distinct = false;
            }
        }
    }

    // Injected fault: HAVING without aggregates is evaluated as a WHERE
    // filter (before grouping).
    if faults.bad_having_pushdown {
        if let Some(h) = &select.having {
            if !h.contains_aggregate() {
                let h = select.having.take().unwrap();
                let existing = select.where_clause.take();
                select.where_clause = Some(match existing {
                    Some(w) => w.and(h),
                    None => h,
                });
            }
        }
    }
}

fn contains_equality_on_column(expr: &Expr) -> bool {
    match expr {
        Expr::Binary { left, op, right } => {
            (*op == BinaryOp::Eq
                && (matches!(**left, Expr::Column(_)) || matches!(**right, Expr::Column(_))))
                || contains_equality_on_column(left)
                || contains_equality_on_column(right)
        }
        _ => expr
            .children()
            .iter()
            .any(|c| contains_equality_on_column(c)),
    }
}

/// Rewrites a filter predicate: correct simplifications plus any enabled
/// faulty rewrites.
pub fn rewrite_predicate(db: &Database, expr: Expr) -> Expr {
    let rewritten = rewrite_expr(db, expr);
    // One evaluator for the whole fold: the previous code built a fresh
    // `Evaluator` per foldable binary node, which showed up in profiles once
    // per-row evaluation was compiled away.
    let evaluator = Evaluator::new(db, ExecutionMode::Optimized);
    constant_fold(db, &evaluator, rewritten)
}

fn rewrite_expr(db: &Database, expr: Expr) -> Expr {
    let faults = &db.config.faults;
    // Rewrite children first (bottom-up).
    let expr = map_children(expr, &mut |child| rewrite_expr(db, child));
    match expr {
        // Double negation elimination (correct).
        Expr::Unary {
            op: UnaryOp::Not,
            expr: inner,
        } => match *inner {
            Expr::Unary {
                op: UnaryOp::Not,
                expr: inner2,
            } => *inner2,
            // Injected fault: NOT (a = b) → a IS DISTINCT FROM b, which is
            // wrong when exactly one operand is NULL.
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } if faults.bad_not_elimination => Expr::Binary {
                left,
                op: BinaryOp::IsDistinctFrom,
                right,
            },
            // Injected fault: NOT (a < b) → a > b, dropping the equal case.
            Expr::Binary {
                left,
                op: BinaryOp::Lt,
                right,
            } if faults.bad_range_negation => Expr::Binary {
                left,
                op: BinaryOp::Gt,
                right,
            },
            other => Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(other),
            },
        },
        // Injected fault: a <=> b → a = b (drops null-safety).
        Expr::Binary {
            left,
            op: BinaryOp::NullSafeEq,
            right,
        } if faults.bad_nullsafe_eq_rewrite => Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        },
        // Injected fault: IN-list rewriting that silently drops NULL
        // elements.
        Expr::InList {
            expr,
            list,
            negated,
        } if faults.bad_in_list_rewrite => {
            let filtered: Vec<Expr> = list
                .into_iter()
                .filter(|e| !matches!(e, Expr::Literal(Value::Null)))
                .collect();
            if filtered.is_empty() {
                Expr::Literal(Value::Boolean(negated))
            } else {
                Expr::InList {
                    expr,
                    list: filtered,
                    negated,
                }
            }
        }
        // Injected fault: BETWEEN with literal bounds in the wrong order is
        // rewritten with the bounds swapped (should be an empty range).
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } if faults.bad_between_rewrite => {
            if let (Expr::Literal(l), Expr::Literal(h)) = (low.as_ref(), high.as_ref()) {
                if l.total_cmp(h) == std::cmp::Ordering::Greater {
                    return Expr::Between {
                        expr,
                        low: high,
                        high: low,
                        negated,
                    };
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            }
        }
        // Injected fault: `col IS NULL` folded to FALSE for NOT NULL columns
        // (wrong in the presence of outer joins).
        Expr::IsNull { expr, negated } => {
            if faults.bad_notnull_isnull_folding {
                if let Expr::Column(col) = expr.as_ref() {
                    if column_is_not_null(db, col) {
                        return Expr::Literal(Value::Boolean(negated));
                    }
                }
            }
            Expr::IsNull { expr, negated }
        }
        other => other,
    }
}

fn column_is_not_null(db: &Database, col: &sql_ast::ColumnRef) -> bool {
    let tables: Vec<String> = match &col.table {
        Some(t) => vec![t.clone()],
        None => db.catalog.table_names(),
    };
    tables.iter().any(|t| {
        db.catalog
            .table(t)
            .and_then(|schema| schema.column(&col.column))
            .map(|c| c.not_null)
            .unwrap_or(false)
    })
}

/// Folds literal-only subexpressions to literals. Correct except where the
/// constant-folding faults are enabled.
fn constant_fold(db: &Database, evaluator: &Evaluator<'_>, expr: Expr) -> Expr {
    let faults = &db.config.faults;
    let expr = map_children(expr, &mut |child| constant_fold(db, evaluator, child));
    match &expr {
        Expr::Binary { left, op, right } => {
            if let (Expr::Literal(lv), Expr::Literal(rv)) = (left.as_ref(), right.as_ref()) {
                // Injected fault: constant folding treats the text '0'/'1'
                // as numbers even under strict typing.
                if faults.bad_constant_folding_text
                    && matches!(lv, Value::Text(_)) != matches!(rv, Value::Text(_))
                    && op.is_comparison()
                {
                    let a = lv.coerce_f64().unwrap_or(0.0);
                    let b = rv.coerce_f64().unwrap_or(0.0);
                    let out = match op {
                        BinaryOp::Eq => a == b,
                        BinaryOp::Neq | BinaryOp::NeqLtGt => a != b,
                        BinaryOp::Lt => a < b,
                        BinaryOp::Le => a <= b,
                        BinaryOp::Gt => a > b,
                        BinaryOp::Ge => a >= b,
                        _ => return expr,
                    };
                    return Expr::Literal(Value::Boolean(out));
                }
                if let Ok(v) = evaluator.apply_binary(*op, lv, rv) {
                    return Expr::Literal(v);
                }
            }
            expr
        }
        Expr::Case {
            operand: None,
            branches,
            else_expr,
        } if faults.bad_case_folding => {
            // Injected fault: a first branch whose condition coerces to a
            // non-zero literal is folded away — wrong when the condition is
            // genuinely NULL at runtime (e.g. references a column).
            if let Some(first) = branches.first() {
                if let Expr::Literal(v) = &first.when {
                    if v.coerce_f64().unwrap_or(0.0) != 0.0 || v.is_null() {
                        return first.then.clone();
                    }
                }
                let _ = else_expr;
            }
            expr
        }
        _ => expr,
    }
}

/// Applies `f` to every immediate child expression, rebuilding the node.
fn map_children(expr: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    match expr {
        Expr::Literal(_) | Expr::Column(_) | Expr::ScalarSubquery(_) | Expr::Exists { .. } => expr,
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(f(*expr)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(f(*left)),
            op,
            right: Box::new(f(*right)),
        },
        Expr::Function { func, args } => Expr::Function {
            func,
            args: args.into_iter().map(f).collect(),
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func,
            arg: arg.map(|a| Box::new(f(*a))),
            distinct,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(f(*o))),
            branches: branches
                .into_iter()
                .map(|b| sql_ast::CaseBranch {
                    when: f(b.when),
                    then: f(b.then),
                })
                .collect(),
            else_expr: else_expr.map(|e| Box::new(f(*e))),
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(f(*expr)),
            data_type,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(f(*expr)),
            low: Box::new(f(*low)),
            high: Box::new(f(*high)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(f(*expr)),
            list: list.into_iter().map(f).collect(),
            negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(f(*expr)),
            subquery,
            negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(f(*expr)),
            negated,
        },
        Expr::IsBool {
            expr,
            target,
            negated,
        } => Expr::IsBool {
            expr: Box::new(f(*expr)),
            target,
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(f(*expr)),
            pattern: Box::new(f(*pattern)),
            negated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use sql_parser::{parse_expression, parse_statement};

    fn db_with(faults: &[&str]) -> Database {
        Database::new(EngineConfig::dynamic().with_faults(faults))
    }

    fn rewrite(db: &Database, sql: &str) -> String {
        rewrite_predicate(db, parse_expression(sql).unwrap()).to_string()
    }

    #[test]
    fn sound_rewrites_preserve_semantics() {
        let db = db_with(&[]);
        assert_eq!(rewrite(&db, "NOT (NOT (c0 = 1))"), "(c0 = 1)");
        assert_eq!(rewrite(&db, "1 + 2 = 3"), "TRUE");
        // Without the fault, NOT (a = b) stays as written.
        assert_eq!(rewrite(&db, "NOT (c0 = 1)"), "(NOT (c0 = 1))");
    }

    #[test]
    fn faulty_not_elimination_changes_shape() {
        let db = db_with(&["bad_not_elimination"]);
        assert_eq!(rewrite(&db, "NOT (c0 = 1)"), "(c0 IS DISTINCT FROM 1)");
    }

    #[test]
    fn faulty_range_negation_drops_equality() {
        let db = db_with(&["bad_range_negation"]);
        assert_eq!(rewrite(&db, "NOT (c0 < 1)"), "(c0 > 1)");
    }

    #[test]
    fn faulty_in_list_rewrite_drops_nulls() {
        let db = db_with(&["bad_in_list_rewrite"]);
        assert_eq!(rewrite(&db, "c0 IN (1, NULL)"), "(c0 IN (1))");
        assert_eq!(rewrite(&db, "c0 IN (NULL)"), "FALSE");
    }

    #[test]
    fn predicate_pushdown_fault_moves_where_into_left_join() {
        let db = db_with(&["bad_predicate_pushdown"]);
        let select =
            match parse_statement("SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 > 5")
                .unwrap()
            {
                sql_ast::Statement::Select(s) => *s,
                _ => unreachable!(),
            };
        let optimized = optimize_select(&db, &select);
        assert!(optimized.where_clause.is_none());
        assert!(optimized.from[0].joins[0]
            .on
            .as_ref()
            .unwrap()
            .to_string()
            .contains("> 5"));
    }

    #[test]
    fn join_flattening_fault_moves_on_into_where() {
        let db = db_with(&["bad_join_flattening"]);
        let select =
            match parse_statement("SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 WHERE t1.c0 = 2")
                .unwrap()
            {
                sql_ast::Statement::Select(s) => *s,
                _ => unreachable!(),
            };
        let optimized = optimize_select(&db, &select).into_owned();
        let where_sql = optimized.where_clause.unwrap().to_string();
        assert!(where_sql.contains("t0.c0"), "{where_sql}");
        assert_eq!(
            optimized.from[0].joins[0].on.as_ref().unwrap().to_string(),
            "TRUE"
        );
    }

    #[test]
    fn sound_optimizer_never_touches_projections() {
        let db = db_with(&["bad_not_elimination", "bad_nullsafe_eq_rewrite"]);
        let select = match parse_statement("SELECT (NOT (c0 = 1)) FROM t0").unwrap() {
            sql_ast::Statement::Select(s) => *s,
            _ => unreachable!(),
        };
        let optimized = optimize_select(&db, &select);
        assert_eq!(
            optimized.projections[0].to_string(),
            "(NOT (c0 = 1))",
            "projection expressions must never be rewritten"
        );
    }
}
