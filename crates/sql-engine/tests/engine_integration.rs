//! Integration tests for the in-memory engine: DDL/DML, joins, aggregation,
//! views, index access paths, and the equivalence of the optimized and
//! reference execution paths on a fault-free configuration.

use sql_ast::{Select, Statement, Value};
use sql_engine::{Database, EngineConfig, ExecutionMode, TypingMode};
use sql_parser::parse_statements;

fn run_script(db: &mut Database, script: &str) {
    for stmt in parse_statements(script).unwrap() {
        db.execute(&stmt).unwrap();
    }
}

fn query(db: &mut Database, sql: &str) -> Vec<Vec<Value>> {
    db.query_sql(sql).unwrap().rows
}

fn sample_db(config: EngineConfig) -> Database {
    let mut db = Database::new(config);
    run_script(
        &mut db,
        "
        CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, c1 TEXT, c2 BOOLEAN);
        CREATE TABLE t1 (c0 INTEGER, c3 INTEGER);
        INSERT INTO t0 (c0, c1, c2) VALUES (1, 'alpha', TRUE), (2, 'beta', FALSE), (3, NULL, TRUE);
        INSERT INTO t1 (c0, c3) VALUES (1, 10), (1, 20), (3, 30), (NULL, 40);
        ",
    );
    db
}

#[test]
fn basic_select_and_filter() {
    let mut db = sample_db(EngineConfig::dynamic());
    assert_eq!(
        query(&mut db, "SELECT COUNT(*) FROM t0"),
        vec![vec![Value::Integer(3)]]
    );
    assert_eq!(
        query(&mut db, "SELECT c1 FROM t0 WHERE c0 > 1 ORDER BY c0"),
        vec![vec![Value::text("beta")], vec![Value::Null]]
    );
}

#[test]
fn where_clause_excludes_unknown_rows() {
    let mut db = sample_db(EngineConfig::dynamic());
    // c1 = 'alpha' is unknown for the NULL row, so only one row survives.
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 WHERE c1 = 'alpha'").len(),
        1
    );
    // The negation also excludes the NULL row.
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 WHERE NOT (c1 = 'alpha')").len(),
        1
    );
    // IS NULL picks up exactly the remaining row: the TLP partition property.
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 WHERE (c1 = 'alpha') IS NULL").len(),
        1
    );
}

#[test]
fn inner_and_outer_joins() {
    let mut db = sample_db(EngineConfig::dynamic());
    assert_eq!(
        query(
            &mut db,
            "SELECT t0.c0, t1.c3 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0"
        )
        .len(),
        3
    );
    // LEFT JOIN preserves the unmatched t0 row (c0 = 2).
    assert_eq!(
        query(
            &mut db,
            "SELECT t0.c0, t1.c3 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0"
        )
        .len(),
        4
    );
    // RIGHT JOIN preserves the unmatched t1 row (c0 IS NULL).
    assert_eq!(
        query(
            &mut db,
            "SELECT t0.c0, t1.c3 FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0"
        )
        .len(),
        4
    );
    // FULL JOIN preserves both.
    assert_eq!(
        query(
            &mut db,
            "SELECT t0.c0, t1.c3 FROM t0 FULL JOIN t1 ON t0.c0 = t1.c0"
        )
        .len(),
        5
    );
    // CROSS JOIN is the full product.
    assert_eq!(query(&mut db, "SELECT * FROM t0 CROSS JOIN t1").len(), 12);
}

#[test]
fn aggregation_group_by_and_having() {
    let mut db = sample_db(EngineConfig::dynamic());
    let rows = query(
        &mut db,
        "SELECT t1.c0, SUM(t1.c3) FROM t1 GROUP BY t1.c0 HAVING COUNT(*) >= 1 ORDER BY 2",
    );
    assert_eq!(rows.len(), 3);
    // SUM over the group with two rows is 30.
    assert!(rows.iter().any(|r| r[1] == Value::Integer(30)));
    // SUM over an empty relation is NULL; COUNT is 0.
    assert_eq!(
        query(&mut db, "SELECT SUM(c3), COUNT(c3) FROM t1 WHERE c3 > 1000"),
        vec![vec![Value::Null, Value::Integer(0)]]
    );
    // DISTINCT aggregation.
    assert_eq!(
        query(&mut db, "SELECT COUNT(DISTINCT c0) FROM t1"),
        vec![vec![Value::Integer(2)]]
    );
}

#[test]
fn views_expand_with_their_predicates() {
    let mut db = sample_db(EngineConfig::dynamic());
    run_script(
        &mut db,
        "CREATE VIEW v0 (a) AS SELECT c0 FROM t0 WHERE c2 = TRUE;",
    );
    assert_eq!(query(&mut db, "SELECT a FROM v0 ORDER BY a").len(), 2);
    // Views are addressable by alias too.
    assert_eq!(
        query(&mut db, "SELECT x.a FROM v0 AS x WHERE x.a = 3"),
        vec![vec![Value::Integer(3)]]
    );
}

#[test]
fn subqueries_scalar_exists_and_in() {
    let mut db = sample_db(EngineConfig::dynamic());
    assert_eq!(
        query(
            &mut db,
            "SELECT c0 FROM t0 WHERE c0 IN (SELECT c0 FROM t1) ORDER BY c0"
        ),
        vec![vec![Value::Integer(1)], vec![Value::Integer(3)]]
    );
    assert_eq!(
        query(
            &mut db,
            "SELECT (SELECT MAX(c3) FROM t1) FROM t0 WHERE c0 = 1"
        ),
        vec![vec![Value::Integer(40)]]
    );
    assert_eq!(
        query(
            &mut db,
            "SELECT c0 FROM t0 WHERE EXISTS (SELECT 1 FROM t1 WHERE t1.c0 = t0.c0)"
        )
        .len(),
        2
    );
}

#[test]
fn set_operations() {
    let mut db = sample_db(EngineConfig::dynamic());
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 UNION SELECT c0 FROM t1").len(),
        4 // 1, 2, 3, NULL
    );
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t1").len(),
        7
    );
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 INTERSECT SELECT c0 FROM t1").len(),
        2
    );
    assert_eq!(
        query(&mut db, "SELECT c0 FROM t0 EXCEPT SELECT c0 FROM t1"),
        vec![vec![Value::Integer(2)]]
    );
}

#[test]
fn constraints_are_enforced() {
    let mut db = sample_db(EngineConfig::dynamic());
    // Duplicate primary key.
    assert!(db
        .execute_sql("INSERT INTO t0 (c0, c1, c2) VALUES (1, 'dup', TRUE)")
        .is_err());
    // OR IGNORE skips the bad row.
    let res = db
        .execute_sql(
            "INSERT OR IGNORE INTO t0 (c0, c1, c2) VALUES (1, 'dup', TRUE), (9, 'ok', FALSE)",
        )
        .unwrap();
    assert_eq!(res, sql_engine::StatementResult::RowsAffected(1));
    // NOT NULL via primary key.
    assert!(db
        .execute_sql("INSERT INTO t0 (c0, c1, c2) VALUES (NULL, 'x', TRUE)")
        .is_err());
    // Unique index creation fails when data already violates it.
    assert!(db
        .execute_sql("CREATE UNIQUE INDEX i_bad ON t1(c0)")
        .is_err());
    assert!(db.execute_sql("CREATE INDEX i_ok ON t1(c0)").is_ok());
}

#[test]
fn update_delete_and_analyze() {
    let mut db = sample_db(EngineConfig::dynamic());
    let res = db
        .execute_sql("UPDATE t1 SET c3 = c3 + 1 WHERE c0 = 1")
        .unwrap();
    assert_eq!(res, sql_engine::StatementResult::RowsAffected(2));
    assert_eq!(
        query(&mut db, "SELECT SUM(c3) FROM t1"),
        vec![vec![Value::Integer(102)]]
    );
    db.execute_sql("ANALYZE t1").unwrap();
    assert_eq!(db.stats("t1").unwrap().row_count, 4);
    let res = db.execute_sql("DELETE FROM t1 WHERE c0 IS NULL").unwrap();
    assert_eq!(res, sql_engine::StatementResult::RowsAffected(1));
    assert_eq!(
        query(&mut db, "SELECT COUNT(*) FROM t1"),
        vec![vec![Value::Integer(3)]]
    );
}

#[test]
fn strict_typing_rejects_what_dynamic_accepts() {
    let mut strict = sample_db(EngineConfig::strict());
    let mut dynamic = sample_db(EngineConfig::dynamic());
    // Text/integer comparison.
    assert!(strict.query_sql("SELECT c0 FROM t0 WHERE c1 = 1").is_err());
    assert!(dynamic.query_sql("SELECT c0 FROM t0 WHERE c1 = 1").is_ok());
    // Non-boolean WHERE.
    assert!(strict.query_sql("SELECT c0 FROM t0 WHERE c0").is_err());
    assert!(dynamic.query_sql("SELECT c0 FROM t0 WHERE c0").is_ok());
    // Ill-typed insert.
    assert!(strict
        .execute_sql("INSERT INTO t0 (c0, c1, c2) VALUES (7, 42, TRUE)")
        .is_err());
    assert!(dynamic
        .execute_sql("INSERT INTO t0 (c0, c1, c2) VALUES (7, 42, TRUE)")
        .is_ok());
}

#[test]
fn index_lookup_matches_seq_scan_when_fault_free() {
    let mut db = sample_db(EngineConfig::dynamic());
    db.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
    // Index path (optimized) and reference path agree.
    let select = match sql_parser::parse_statement("SELECT c1 FROM t0 WHERE c0 = '2'").unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let optimized = db.query(&select, ExecutionMode::Optimized).unwrap();
    let reference = db.query(&select, ExecutionMode::Reference).unwrap();
    assert_eq!(
        optimized.multiset_fingerprint(),
        reference.multiset_fingerprint()
    );
    assert_eq!(optimized.row_count(), 1);
}

#[test]
fn optimized_and_reference_agree_on_fault_free_engine() {
    // A mini differential test: the optimized path must agree with the
    // reference path for a battery of queries when no faults are injected.
    let mut db = sample_db(EngineConfig::dynamic());
    db.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
    let queries = [
        "SELECT * FROM t0 WHERE NOT (c1 = 'alpha')",
        "SELECT * FROM t0 WHERE c0 <=> NULL",
        "SELECT * FROM t0 WHERE c0 IN (1, NULL, 3)",
        "SELECT * FROM t0 WHERE c0 BETWEEN 3 AND 1",
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c3 > 15",
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c2 WHERE t1.c3 IS NOT NULL",
        "SELECT DISTINCT c2 FROM t0 WHERE c0 = 1 OR c0 = 3",
        "SELECT COUNT(*) FROM t0 WHERE c1 IS NULL",
        "SELECT c2, COUNT(c1) FROM t0 GROUP BY c2",
        "SELECT * FROM t0 WHERE CASE WHEN c1 THEN 1 ELSE 0 END = 1",
    ];
    for sql in queries {
        let select: Select = match sql_parser::parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            _ => unreachable!(),
        };
        let optimized = db.query(&select, ExecutionMode::Optimized).unwrap();
        let reference = db.query(&select, ExecutionMode::Reference).unwrap();
        assert_eq!(
            optimized.multiset_fingerprint(),
            reference.multiset_fingerprint(),
            "optimized and reference paths disagree on: {sql}"
        );
    }
}

#[test]
fn injected_faults_make_paths_disagree() {
    // Each (fault, query) pair is detectable: the optimized path diverges
    // from the reference path — the property the NoREC oracle exploits.
    let cases = [
        (
            "bad_not_elimination",
            "SELECT * FROM t0 WHERE NOT (c1 = 'alpha')",
        ),
        (
            "bad_predicate_pushdown",
            "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c3 > 15",
        ),
        (
            "bad_join_flattening",
            // The ON condition never matches, so the RIGHT JOIN null-extends
            // every t1 row; flattening the ON term into WHERE loses them all.
            "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c3 WHERE t1.c3 IS NOT NULL",
        ),
        (
            "bad_in_list_rewrite",
            "SELECT * FROM t0 WHERE NOT (c0 IN (5, NULL))",
        ),
        (
            "bad_index_lookup_coercion",
            "SELECT c1 FROM t0 WHERE c0 = '2'",
        ),
    ];
    for (fault, sql) in cases {
        let mut db = sample_db(EngineConfig::dynamic().with_faults(&[fault]));
        db.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
        let select: Select = match sql_parser::parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            _ => unreachable!(),
        };
        let optimized = db.query(&select, ExecutionMode::Optimized).unwrap();
        let reference = db.query(&select, ExecutionMode::Reference).unwrap();
        assert_ne!(
            optimized.multiset_fingerprint(),
            reference.multiset_fingerprint(),
            "fault {fault} was not observable on: {sql}"
        );
    }
}

#[test]
fn coverage_accumulates_during_execution() {
    let mut db = sample_db(EngineConfig::dynamic());
    db.reset_coverage();
    let _ = query(
        &mut db,
        "SELECT SIN(c0), UPPER(c1) FROM t0 WHERE c0 + 1 > 0",
    );
    let cov = db.coverage_snapshot();
    assert!(cov.functions.contains("SIN"));
    assert!(cov.functions.contains("UPPER"));
    assert!(cov.plan_operators.contains("seq_scan"));
    assert!(cov.points() > 5);
}

#[test]
fn typing_mode_affects_strictness_of_functions() {
    let mut strict = Database::new(EngineConfig {
        typing: TypingMode::Strict,
        ..EngineConfig::strict()
    });
    strict.execute_sql("CREATE TABLE t (c0 INTEGER)").unwrap();
    strict.execute_sql("INSERT INTO t (c0) VALUES (1)").unwrap();
    assert!(strict.query_sql("SELECT SIN(c0) FROM t").is_ok());
    assert!(strict.query_sql("SELECT UPPER(c0) FROM t").is_err());
}

#[test]
fn limit_offset_and_order() {
    let mut db = sample_db(EngineConfig::dynamic());
    let rows = query(
        &mut db,
        "SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 2 OFFSET 1",
    );
    assert_eq!(rows, vec![vec![Value::Integer(2)], vec![Value::Integer(1)]]);
}

#[test]
fn drop_and_recreate_objects() {
    let mut db = sample_db(EngineConfig::dynamic());
    db.execute_sql("CREATE VIEW v0 AS SELECT c0 FROM t0")
        .unwrap();
    db.execute_sql("DROP VIEW v0").unwrap();
    db.execute_sql("DROP TABLE t1").unwrap();
    assert!(db.query_sql("SELECT * FROM t1").is_err());
    assert!(db.execute_sql("DROP TABLE t1").is_err());
    assert!(db.execute_sql("DROP TABLE IF EXISTS t1").is_ok());
    // Recreating under the old name works.
    db.execute_sql("CREATE TABLE t1 (c0 INTEGER)").unwrap();
    assert_eq!(
        query(&mut db, "SELECT COUNT(*) FROM t1"),
        vec![vec![Value::Integer(0)]]
    );
}
