//! A minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses.
//!
//! The build environment is fully offline, so the workspace cannot pull the
//! real `rand` from a registry. This shim provides source-compatible
//! replacements for exactly the items the generator and schema model import:
//!
//! * [`Rng`] with `gen_range` (integer and float ranges, half-open and
//!   inclusive) and `gen_bool`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — here a SplitMix64 generator (deterministic, `Clone`),
//! * [`rngs::mock::StepRng`] — a fixed-stride mock for tests,
//! * [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! Statistical quality matters less than determinism here: the platform's
//! experiments fix seeds and compare runs, they do not need cryptographic or
//! even high-grade statistical randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A range that values of type `T` can be uniformly sampled from.
///
/// `T` is a trait parameter (not an associated type) so that integer
/// literals in a range expression unify with the type the call site
/// expects, exactly as with the real `rand` crate
/// (`let i: usize = rng.gen_range(0..3);`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A type that can be drawn uniformly between two bounds.
pub trait SampleUniform: Sized + Copy {
    /// Draws one value in `[start, end)` (or `[start, end]` when
    /// `inclusive`).
    fn sample_one<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_one<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_one<R: RngCore + ?Sized>(start: f64, end: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(start < end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

// Single blanket impls (rather than per-type ones) so that an integer
// literal's type in e.g. `rng.gen_range(0..3)` unifies with the expected
// output type at the call site — the same inference behaviour as `rand`.
impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_one(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_one(start, end, true, rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// SplitMix64 passes BigCrush for the output sizes used here and has a
    /// one-word state, which keeps the generator (and everything that embeds
    /// it, such as the adaptive generator) cheap to clone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The raw one-word generator state.
        ///
        /// [`SeedableRng::seed_from_u64`] stores the seed verbatim as the
        /// state, so `StdRng::seed_from_u64(rng.state())` reconstructs the
        /// generator exactly mid-stream — which is what makes campaign
        /// checkpoint files trivial to write.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A generator that returns `initial`, `initial + increment`, ... —
        /// useful for deterministic unit tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Extension methods for random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Picks one element uniformly, or `None` when the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(SampleRange::<usize>::sample(0..self.len(), rng))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::<usize>::sample(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_and_clonable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.gen_range(0..1_000u64);
        }
        let mut b = StdRng::seed_from_u64(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=9);
            assert!((-3..=9).contains(&v));
            let u = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&u));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn slice_helpers_work() {
        let mut rng = StepRng::new(0, 7);
        let items = [10, 20, 30];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut to_shuffle: Vec<i32> = (0..10).collect();
        let mut std_rng = StdRng::seed_from_u64(1);
        to_shuffle.shuffle(&mut std_rng);
        let mut sorted = to_shuffle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
