//! The first real wire backend: the system `sqlite3` binary driven over a
//! subprocess pipe.
//!
//! This crate proves the platform's SQL-text-only contract end to end. The
//! connection implements exactly the four text methods of the platform
//! interface — `execute`, `query`, `reset`, `name` — and nothing else: no
//! AST fast path, no state checkpoints (the stateful oracles take the
//! SQL-replay fallback), no storage metrics, no extra sessions. The whole
//! campaign stack (adaptive generator, oracles, reducer, supervisor,
//! resume) runs unchanged against a backend it cannot see inside.
//!
//! # Wire protocol
//!
//! One long-lived `sqlite3 -batch` child per connection, on an in-memory
//! database. Each statement is written to the child's stdin followed by a
//! sentinel `SELECT` whose output marks the end of the statement's output;
//! stderr is merged into stdout (in program order, via `sh -c 'exec ...
//! 2>&1'`), so error lines arrive inline and are recognised by their
//! `Parse error` / `Runtime error` prefixes. [`DbmsConnection::reset`]
//! re-opens the in-memory database (`.open :memory:`), and respawns the
//! child if it died — a dead subprocess surfaces as an
//! [`INFRA_MARKER`]-tagged error that the campaign supervisor classifies
//! as a [`BackendCrash`](sqlancer_core::supervisor::IncidentKind) infra
//! incident, never a logic bug.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use sql_ast::Value;
use sqlancer_core::dbms::{DbmsConnection, EngineCoverage, QueryResult, StatementOutcome};
use sqlancer_core::driver::{Capability, Driver};
use sqlancer_core::supervisor::INFRA_MARKER;
use sqlancer_core::BackendEvent;

/// Column separator in the child's list-mode output. Printable (recent
/// sqlite3 CLIs caret-escape control characters in output, which would
/// corrupt framing) and absent from every value the generator can render.
const SEPARATOR: &str = "<|>";

/// Token the child prints for SQL NULL, distinguishable from the empty
/// string and from any generated text value.
const NULL_TOKEN: &str = "<NULL>";

/// Driver for the system `sqlite3` binary: each connection is one
/// subprocess on a private in-memory database.
pub struct SqliteProcDriver {
    binary: String,
}

impl SqliteProcDriver {
    /// A driver using the given `sqlite3` binary (a name resolved on
    /// `PATH` or an absolute path).
    pub fn with_binary(binary: impl Into<String>) -> SqliteProcDriver {
        SqliteProcDriver {
            binary: binary.into(),
        }
    }

    /// A driver using the system `sqlite3` from `PATH`.
    pub fn system() -> SqliteProcDriver {
        SqliteProcDriver::with_binary("sqlite3")
    }

    /// Whether the driver can actually reach a working `sqlite3` binary.
    /// CI and tests use this to skip (with a visible notice) on machines
    /// without one, keeping the offline build green.
    pub fn available(&self) -> bool {
        self.connect().is_ok()
    }
}

impl Driver for SqliteProcDriver {
    fn name(&self) -> &str {
        "sqlite-proc"
    }

    fn capability(&self) -> Capability {
        // Text-only wire profile, with one refinement: the sqlite3 CLI is
        // a single session, but transactions and savepoints work.
        Capability::text_only()
    }

    fn connect(&self) -> Result<Box<dyn DbmsConnection>, String> {
        Ok(Box::new(SqliteProcConnection::spawn(&self.binary)?))
    }
}

/// The live subprocess: pipe handles plus the sentinel counter.
struct Wire {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    sentinel: u64,
}

impl Drop for Wire {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A connection to one `sqlite3` subprocess. Implements the four text
/// methods of the platform interface plus wire-statement coverage
/// reporting; everything else keeps the trait's conservative defaults.
pub struct SqliteProcConnection {
    binary: String,
    /// `None` after the subprocess died; [`DbmsConnection::reset`]
    /// respawns. While dead, every statement fails with an
    /// [`INFRA_MARKER`]-tagged crash message so the supervisor retries
    /// through its recovery path instead of observing bogus empty state.
    wire: Option<Wire>,
    /// Wall-clock-plane wire telemetry since the last drain. Transport
    /// accounting only (pipe bytes, sentinel frames, child respawns) —
    /// never part of the deterministic trace summary.
    telemetry: WireCounters,
    /// Statement keywords shipped over the wire, cumulative for the
    /// connection's lifetime (never cleared on reset/respawn — the
    /// [`DbmsConnection::engine_coverage`] monotonicity contract). The
    /// only engine-plane fact a black-box wire backend can attest.
    statement_kinds: BTreeSet<String>,
}

/// Wire-transport counters drained via
/// [`DbmsConnection::drain_backend_events`].
#[derive(Default)]
struct WireCounters {
    /// Bytes written to the child's stdin (statement payloads, including
    /// the sentinel framing).
    bytes_written: u64,
    /// Bytes read from the child's stdout (result rows, error lines and
    /// sentinel echoes).
    bytes_read: u64,
    /// Statements framed with an end-of-output sentinel.
    sentinel_frames: u64,
    /// Child processes respawned after a death (the initial spawn is not
    /// a respawn).
    respawns: u64,
}

impl SqliteProcConnection {
    /// Spawns a fresh subprocess on an in-memory database.
    pub fn spawn(binary: &str) -> Result<SqliteProcConnection, String> {
        let wire = spawn_wire(binary)?;
        let mut conn = SqliteProcConnection {
            binary: binary.to_string(),
            wire: Some(wire),
            telemetry: WireCounters::default(),
            statement_kinds: BTreeSet::new(),
        };
        // Connect-time probe, three stages, each surfacing a structured
        // `infra:` connect error instead of a confusing first-statement
        // failure mid-campaign (the `sh` wrapper itself always spawns, so
        // a missing binary lands here too, as a dead pipe):
        //
        // 1. version banner — an ancient or impostor binary is rejected
        //    before it can mis-execute generated SQL;
        // 2. `.open :memory:` sanity — the reset/re-open path must work at
        //    connect time, or every later `reset()` would silently leak
        //    state between databases;
        // 3. `SELECT 1` — the wire framing round-trips a result row.
        //
        // `run_statement` errors are already `infra:`-tagged and pass
        // through untouched.
        let version = conn.run_statement("SELECT sqlite_version()")?;
        let banner = version.first().map(String::as_str).unwrap_or("");
        if find_error(&version).is_some() || !banner.starts_with("3.") {
            return Err(format!(
                "{INFRA_MARKER} sqlite3 connect probe: broken or unsupported binary \
                 (version banner {version:?}, need 3.x)"
            ));
        }
        match conn.run_statement(".open :memory:") {
            Ok(lines) if lines.is_empty() => {}
            Ok(lines) => {
                return Err(format!(
                    "{INFRA_MARKER} sqlite3 connect probe: `.open :memory:` rejected: {lines:?}"
                ))
            }
            Err(err) => return Err(err),
        }
        match conn.run_statement("SELECT 1") {
            Ok(lines) if lines == vec!["1".to_string()] => Ok(conn),
            Ok(lines) => Err(format!(
                "{INFRA_MARKER} sqlite3 connect probe returned unexpected output: {lines:?}"
            )),
            Err(err) => Err(err),
        }
    }

    /// Kills the backend subprocess, simulating a backend crash. Test
    /// hook for the fault-injection suite: the next statement observes a
    /// broken pipe / EOF and fails with an [`INFRA_MARKER`] message.
    pub fn kill_backend(&mut self) {
        if let Some(wire) = self.wire.as_mut() {
            let _ = wire.child.kill();
            let _ = wire.child.wait();
        }
    }

    fn crash_error(&mut self, detail: &str) -> String {
        self.wire = None;
        format!("{INFRA_MARKER} sqlite3 backend process exited: {detail}")
    }

    /// Sends one statement followed by the sentinel and collects all
    /// output lines up to the sentinel. `Err` means the subprocess is
    /// gone; statement-level SQL errors are ordinary lines in the output.
    fn run_statement(&mut self, sql: &str) -> Result<Vec<String>, String> {
        let Some(wire) = self.wire.as_mut() else {
            return Err(self.crash_error("connection is down"));
        };
        wire.sentinel += 1;
        self.telemetry.sentinel_frames += 1;
        let marker = format!("SQLPROC_SENTINEL_{}", wire.sentinel);
        // Newlines inside the statement would shift the CLI's line-based
        // error reporting; the generator renders single-line SQL, this
        // just keeps the framing robust.
        let flat = sql.replace(['\n', '\r'], " ");
        let payload = format!("{flat}\n;\nSELECT '{marker}';\n");
        self.telemetry.bytes_written += payload.len() as u64;
        if let Err(err) = wire
            .stdin
            .write_all(payload.as_bytes())
            .and_then(|()| wire.stdin.flush())
        {
            return Err(self.crash_error(&format!("write failed: {err}")));
        }
        // The statement reached the backend: record its keyword as a
        // wire-plane coverage point. Dot-commands (`.open`) are CLI
        // framing, not SQL, and are skipped.
        if let Some(keyword) = flat.split_whitespace().next() {
            if keyword
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
            {
                let keyword = keyword.to_ascii_uppercase();
                if !self.statement_kinds.contains(&keyword) {
                    self.statement_kinds.insert(keyword);
                }
            }
        }
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            match wire.stdout.read_line(&mut line) {
                Ok(0) => return Err(self.crash_error("unexpected eof on pipe")),
                Ok(bytes) => {
                    self.telemetry.bytes_read += bytes as u64;
                    let line = line.trim_end_matches('\n');
                    if line == marker {
                        return Ok(lines);
                    }
                    lines.push(line.to_string());
                }
                Err(err) => return Err(self.crash_error(&format!("read failed: {err}"))),
            }
        }
    }
}

/// Spawns `sqlite3 -batch` with stderr merged into stdout in program
/// order, so error lines interleave correctly with result rows.
fn spawn_wire(binary: &str) -> Result<Wire, String> {
    let mut child = Command::new("sh")
        .arg("-c")
        .arg(r#"exec "$0" "$@" 2>&1"#)
        .arg(binary)
        .args([
            "-batch",
            "-list",
            "-noheader",
            "-separator",
            SEPARATOR,
            "-nullvalue",
            NULL_TOKEN,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|err| format!("failed to spawn {binary}: {err}"))?;
    let stdin = child.stdin.take().ok_or("no stdin pipe")?;
    let stdout = BufReader::new(child.stdout.take().ok_or("no stdout pipe")?);
    Ok(Wire {
        child,
        stdin,
        stdout,
        sentinel: 0,
    })
}

/// Whether an output line is a CLI error report rather than a result row.
fn is_error_line(line: &str) -> bool {
    line.starts_with("Parse error")
        || line.starts_with("Runtime error")
        || line.starts_with("Error:")
}

/// Strips the statement-counter-dependent `near line N` from a CLI error
/// so messages are stable across replays of the same statement.
fn normalize_error(line: &str) -> String {
    if let Some(pos) = line.find(" near line ") {
        let rest = &line[pos + " near line ".len()..];
        if let Some(colon) = rest.find(':') {
            return format!("{}:{}", &line[..pos], &rest[colon + 1..]);
        }
    }
    line.to_string()
}

/// First error line (normalized) in a statement's output, if any.
fn find_error(lines: &[String]) -> Option<String> {
    lines
        .iter()
        .find(|line| is_error_line(line))
        .map(|line| normalize_error(line))
}

/// Whether a field could be a numeric literal the CLI printed (digits and
/// numeric punctuation only — keeps `Inf`/`NaN` and ordinary text as text).
fn looks_numeric(field: &str) -> bool {
    let mut has_digit = false;
    for byte in field.bytes() {
        match byte {
            b'0'..=b'9' => has_digit = true,
            b'+' | b'-' | b'.' | b'e' | b'E' => {}
            _ => return false,
        }
    }
    has_digit
}

/// Reconstructs a typed [`Value`] from one list-mode output field.
fn parse_value(field: &str) -> Value {
    if field == NULL_TOKEN {
        return Value::Null;
    }
    if looks_numeric(field) {
        if let Ok(integer) = field.parse::<i64>() {
            return Value::Integer(integer);
        }
        if let Ok(real) = field.parse::<f64>() {
            return Value::Real(real);
        }
    }
    Value::Text(field.to_string())
}

impl DbmsConnection for SqliteProcConnection {
    fn name(&self) -> &str {
        "sqlite-proc"
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        match self.run_statement(sql) {
            Ok(lines) => match find_error(&lines) {
                Some(error) => StatementOutcome::Failure(error),
                None => StatementOutcome::Success,
            },
            Err(infra) => StatementOutcome::Failure(infra),
        }
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let lines = self.run_statement(sql)?;
        if let Some(error) = find_error(&lines) {
            return Err(error);
        }
        let rows: Vec<Vec<Value>> = lines
            .iter()
            .map(|line| line.split(SEPARATOR).map(parse_value).collect())
            .collect();
        // List mode with headers off never reports column names; the
        // oracles only compare row multisets, so synthesize none.
        Ok(QueryResult {
            columns: Vec::new(),
            rows,
        })
    }

    fn reset(&mut self) {
        // Re-open the in-memory database; respawn if the child is gone or
        // the reset itself fails. Reset must not panic: if the respawn
        // fails too, the connection stays down and every statement reports
        // the infra crash until the supervisor quarantines the backend.
        let reopened = self.wire.is_some()
            && matches!(self.run_statement(".open :memory:"), Ok(ref lines) if lines.is_empty());
        if !reopened {
            self.wire = spawn_wire(&self.binary).ok();
            if self.wire.is_some() {
                self.telemetry.respawns += 1;
            }
        }
    }

    fn engine_coverage(&self) -> Option<EngineCoverage> {
        if self.statement_kinds.is_empty() {
            return None;
        }
        let mut coverage = EngineCoverage::default();
        for keyword in &self.statement_kinds {
            coverage.record("wire_statements", keyword);
        }
        Some(coverage)
    }

    fn drain_backend_events(&mut self) -> Vec<BackendEvent> {
        let drained = std::mem::take(&mut self.telemetry);
        let mut events = Vec::new();
        if drained.bytes_written > 0 {
            events.push(BackendEvent::WireWrites {
                bytes: drained.bytes_written,
            });
        }
        if drained.bytes_read > 0 {
            events.push(BackendEvent::WireReads {
                bytes: drained.bytes_read,
            });
        }
        if drained.sentinel_frames > 0 {
            events.push(BackendEvent::SentinelFrames {
                count: drained.sentinel_frames,
            });
        }
        if drained.respawns > 0 {
            events.push(BackendEvent::Respawns {
                count: drained.respawns,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> SqliteProcDriver {
        SqliteProcDriver::system()
    }

    /// Tests self-skip (with a notice) where no sqlite3 binary exists, so
    /// the offline build stays green.
    fn connection() -> Option<SqliteProcConnection> {
        match SqliteProcConnection::spawn("sqlite3") {
            Ok(conn) => Some(conn),
            Err(err) => {
                eprintln!("SKIP: no working sqlite3 binary on PATH ({err})");
                None
            }
        }
    }

    #[test]
    fn execute_and_query_round_trip() {
        let Some(mut conn) = connection() else { return };
        assert!(conn
            .execute("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)")
            .is_success());
        assert!(conn
            .execute("INSERT INTO t0 VALUES (1, 'a'), (NULL, 'it''s')")
            .is_success());
        let result = conn.query("SELECT c0, c1 FROM t0 ORDER BY c0").unwrap();
        assert_eq!(
            result.rows,
            vec![
                vec![Value::Null, Value::Text("it's".into())],
                vec![Value::Integer(1), Value::Text("a".into())],
            ]
        );
    }

    #[test]
    fn errors_are_reported_without_line_numbers() {
        let Some(mut conn) = connection() else { return };
        let outcome = conn.execute("FROO BAR");
        let StatementOutcome::Failure(message) = outcome else {
            panic!("syntax error not reported")
        };
        assert!(
            message.starts_with("Parse error:"),
            "unexpected message: {message}"
        );
        assert!(
            !message.contains("near line"),
            "line number leaked: {message}"
        );
        // The connection survives statement-level errors.
        assert!(conn.execute("SELECT 1").is_success());
    }

    #[test]
    fn reset_clears_all_state() {
        let Some(mut conn) = connection() else { return };
        assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
        conn.reset();
        assert!(conn.query("SELECT * FROM t0").is_err());
        assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
    }

    #[test]
    fn killed_backend_reports_infra_crash_and_reset_revives() {
        let Some(mut conn) = connection() else { return };
        assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
        conn.kill_backend();
        let StatementOutcome::Failure(message) = conn.execute("INSERT INTO t0 VALUES (1)") else {
            panic!("dead backend reported success")
        };
        assert!(
            message.contains(INFRA_MARKER),
            "not infra-tagged: {message}"
        );
        assert_eq!(
            sqlancer_core::supervisor::classify_infra_message(&message),
            sqlancer_core::supervisor::IncidentKind::BackendCrash,
        );
        // Still down until reset.
        assert!(conn.query("SELECT 1").is_err());
        conn.reset();
        assert!(conn.execute("SELECT 1").is_success());
    }

    #[test]
    fn transactions_and_savepoints_work() {
        let Some(mut conn) = connection() else { return };
        assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
        assert!(conn.execute("BEGIN").is_success());
        assert!(conn.execute("INSERT INTO t0 VALUES (1)").is_success());
        assert!(conn.execute("SAVEPOINT sp1").is_success());
        assert!(conn.execute("INSERT INTO t0 VALUES (2)").is_success());
        assert!(conn.execute("ROLLBACK TO sp1").is_success());
        assert!(conn.execute("COMMIT").is_success());
        let result = conn.query("SELECT COUNT(*) FROM t0").unwrap();
        assert_eq!(result.rows, vec![vec![Value::Integer(1)]]);
    }

    #[test]
    fn driver_reports_text_only_capability() {
        let cap = driver().capability();
        assert!(cap.transactions && cap.savepoints);
        assert!(!cap.ast_statements && !cap.state_checkpoints);
        assert!(!cap.multi_session && !cap.storage_metrics);
    }

    #[test]
    fn wire_telemetry_drains_and_resets() {
        let Some(mut conn) = connection() else { return };
        assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
        assert!(conn.query("SELECT 1").is_ok());
        let events = conn.drain_backend_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, BackendEvent::WireWrites { bytes } if *bytes > 0)));
        assert!(events
            .iter()
            .any(|e| matches!(e, BackendEvent::WireReads { bytes } if *bytes > 0)));
        // Probe + CREATE + SELECT: one sentinel frame per statement.
        assert!(events
            .iter()
            .any(|e| matches!(e, BackendEvent::SentinelFrames { count } if *count >= 3)));
        assert!(
            conn.drain_backend_events().is_empty(),
            "drain must reset the counters"
        );
        // A killed child surfaces as a respawn at the next reset.
        conn.kill_backend();
        let _ = conn.execute("SELECT 1");
        conn.reset();
        assert!(conn
            .drain_backend_events()
            .iter()
            .any(|e| matches!(e, BackendEvent::Respawns { count: 1 })));
    }

    /// A binary that dies immediately (here `true`) must surface as a
    /// structured `infra:` connect error, not a success followed by a
    /// confusing first-statement failure. The absent-binary self-skip in
    /// [`connection`] rides the same path.
    #[test]
    fn connect_probe_flags_dead_binary_as_infra() {
        let Err(err) = SqliteProcConnection::spawn("true") else {
            panic!("dead binary passed the connect probe")
        };
        assert!(err.contains(INFRA_MARKER), "not infra-tagged: {err}");
    }

    /// An impostor that answers the wire protocol but reports an ancient
    /// version banner is rejected at connect time with a probe-attributed
    /// `infra:` error.
    #[cfg(unix)]
    #[test]
    fn connect_probe_rejects_impostor_version_banner() {
        use std::io::Write as _;
        use std::os::unix::fs::PermissionsExt;

        // A fake sqlite3: echoes sentinel frames so the wire protocol
        // round-trips, but claims to be SQLite 2.x.
        let path = std::env::temp_dir().join(format!("impostor-sqlite3-{}", std::process::id()));
        let script = concat!(
            "#!/bin/sh\n",
            "while IFS= read -r line; do\n",
            "  case \"$line\" in\n",
            "    \"SELECT 'SQLPROC_SENTINEL_\"*)\n",
            "      m=${line#SELECT \\'}\n",
            "      printf '%s\\n' \"${m%\\';}\"\n",
            "      ;;\n",
            "    *sqlite_version*)\n",
            "      printf '2.5.0\\n'\n",
            "      ;;\n",
            "  esac\n",
            "done\n",
        );
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(script.as_bytes()).unwrap();
        file.set_permissions(std::fs::Permissions::from_mode(0o755))
            .unwrap();
        drop(file);

        let spawned = SqliteProcConnection::spawn(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
        let Err(err) = spawned else {
            panic!("impostor binary passed the connect probe")
        };
        assert!(err.contains(INFRA_MARKER), "not infra-tagged: {err}");
        assert!(err.contains("version banner"), "wrong attribution: {err}");
        assert_eq!(
            sqlancer_core::supervisor::classify_infra_message(&err),
            sqlancer_core::supervisor::IncidentKind::ProbeFailure,
        );
    }

    #[test]
    fn null_and_real_values_parse() {
        let Some(mut conn) = connection() else { return };
        let result = conn.query("SELECT NULL, 1.5, '', 'x', -7").unwrap();
        assert_eq!(
            result.rows,
            vec![vec![
                Value::Null,
                Value::Real(1.5),
                Value::Text(String::new()),
                Value::Text("x".into()),
                Value::Integer(-7),
            ]]
        );
    }
}
