//! The injected-bug catalog: ground truth for the fleet's logic bugs.
//!
//! Each entry ties one engine fault switch ([`sql_engine::FaultConfig`]) to
//! a stable bug identifier, a human-readable description, the SQL features
//! involved, and whether it is a *logic* bug (silently wrong results) or an
//! *other* bug (internal error / crash) — the two classes Table 2 of the
//! paper distinguishes.

/// One injectable bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedBug {
    /// Stable identifier (used as the ground truth for "unique bugs").
    pub id: &'static str,
    /// The engine fault switch that enables it.
    pub fault: &'static str,
    /// Whether this is a logic bug (vs. an internal-error/crash bug).
    pub is_logic: bool,
    /// Canonical names of the SQL features involved in triggering it.
    pub features: &'static [&'static str],
    /// One-line description.
    pub description: &'static str,
}

/// The full catalog of injectable bugs.
pub fn catalog() -> Vec<InjectedBug> {
    vec![
        InjectedBug {
            id: "BUG-NOT-NULL-SEMANTICS",
            fault: "bad_not_elimination",
            is_logic: true,
            features: &["OP_NOT", "OP_EQ"],
            description: "NOT (a = b) rewritten to IS DISTINCT FROM, changing NULL semantics",
        },
        InjectedBug {
            id: "BUG-RANGE-NEGATION",
            fault: "bad_range_negation",
            is_logic: true,
            features: &["OP_NOT", "OP_LT"],
            description: "NOT (a < b) rewritten to a > b, dropping equality",
        },
        InjectedBug {
            id: "BUG-PREDICATE-PUSHDOWN",
            fault: "bad_predicate_pushdown",
            is_logic: true,
            features: &["JOIN_LEFT", "CLAUSE_WHERE"],
            description: "WHERE predicate pushed into LEFT JOIN ON clause",
        },
        InjectedBug {
            id: "BUG-JOIN-FLATTENING",
            fault: "bad_join_flattening",
            is_logic: true,
            features: &["JOIN_RIGHT", "JOIN_LEFT", "CLAUSE_WHERE"],
            description: "outer-join ON term flattened into WHERE (SQLite Listing 3)",
        },
        InjectedBug {
            id: "BUG-CONST-FOLD-TEXT",
            fault: "bad_constant_folding_text",
            is_logic: true,
            features: &["TYPE_TEXT", "OP_EQ"],
            description: "constant folding coerces text literals numerically",
        },
        InjectedBug {
            id: "BUG-NOTNULL-ISNULL-FOLD",
            fault: "bad_notnull_isnull_folding",
            is_logic: true,
            features: &["OP_IS_NULL", "KW_NOT_NULL"],
            description: "IS NULL on NOT NULL columns folded to FALSE despite outer joins",
        },
        InjectedBug {
            id: "BUG-IN-LIST-NULL",
            fault: "bad_in_list_rewrite",
            is_logic: true,
            features: &["OP_IN"],
            description: "IN-list rewrite drops NULL elements",
        },
        InjectedBug {
            id: "BUG-BETWEEN-SWAP",
            fault: "bad_between_rewrite",
            is_logic: true,
            features: &["OP_BETWEEN"],
            description: "BETWEEN with reversed literal bounds gets its bounds swapped",
        },
        InjectedBug {
            id: "BUG-DISTINCT-ELIM",
            fault: "bad_distinct_elimination",
            is_logic: true,
            features: &["CLAUSE_DISTINCT", "OP_EQ"],
            description: "DISTINCT dropped when an equality predicate is present",
        },
        InjectedBug {
            id: "BUG-LIMIT-PUSHDOWN",
            fault: "bad_limit_pushdown",
            is_logic: true,
            features: &["CLAUSE_LIMIT", "JOIN_LEFT"],
            description: "LIMIT pushed below an outer join",
        },
        InjectedBug {
            id: "BUG-NULLSAFE-EQ",
            fault: "bad_nullsafe_eq_rewrite",
            is_logic: true,
            features: &["OP_NULLSAFE_EQ"],
            description: "<=> rewritten to plain equality",
        },
        InjectedBug {
            id: "BUG-CASE-FOLD",
            fault: "bad_case_folding",
            is_logic: true,
            features: &["CLAUSE_CASE"],
            description: "CASE folded on a constant-true first branch",
        },
        InjectedBug {
            id: "BUG-INDEX-COERCION",
            fault: "bad_index_lookup_coercion",
            is_logic: true,
            features: &["STMT_CREATE_INDEX", "OP_EQ"],
            description: "index lookup skips text-to-numeric coercion",
        },
        InjectedBug {
            id: "BUG-UNIQUE-INDEX-SHORTCUT",
            fault: "bad_unique_index_shortcut",
            is_logic: true,
            features: &["STMT_CREATE_INDEX", "KW_UNIQUE_INDEX", "OP_EQ"],
            description: "unique-index lookup stops at the first match",
        },
        InjectedBug {
            id: "BUG-PARTIAL-INDEX",
            fault: "bad_partial_index_scan",
            is_logic: true,
            features: &["STMT_CREATE_INDEX", "KW_PARTIAL_INDEX"],
            description: "partial index used without checking its predicate",
        },
        InjectedBug {
            id: "BUG-STALE-COUNT",
            fault: "bad_stale_count_statistics",
            is_logic: true,
            features: &["STMT_ANALYZE", "AGG_COUNT"],
            description: "COUNT(*) answered from stale ANALYZE statistics",
        },
        InjectedBug {
            id: "BUG-REPLACE-AFFINITY",
            fault: "bad_replace_type_affinity",
            is_logic: true,
            features: &["FN_REPLACE", "OP_EQ"],
            description:
                "REPLACE returns a non-text intermediate (SQLite Listing 2, hidden ten years)",
        },
        InjectedBug {
            id: "BUG-BITWISE-INVERSION",
            fault: "bad_bitwise_inversion",
            is_logic: true,
            features: &["OP_BITNOT"],
            description: "bitwise inversion mishandles negative operands (TiDB ~ bug)",
        },
        InjectedBug {
            id: "BUG-NULLIF-NULL",
            fault: "bad_nullif_null_handling",
            is_logic: true,
            features: &["FN_NULLIF"],
            description: "NULLIF returns NULL when its second argument is NULL",
        },
        InjectedBug {
            id: "BUG-COLLATION-COMPARE",
            fault: "bad_collation_comparison",
            is_logic: true,
            features: &["TYPE_TEXT", "OP_EQ"],
            description: "optimized text comparison is case-insensitive",
        },
        InjectedBug {
            id: "BUG-LIKE-UNDERSCORE",
            fault: "bad_like_underscore",
            is_logic: true,
            features: &["OP_LIKE"],
            description: "LIKE treats _ as a literal in the optimized path",
        },
        InjectedBug {
            id: "BUG-INTEGER-DIVISION",
            fault: "bad_integer_division",
            is_logic: true,
            features: &["OP_DIV"],
            description: "integer division rounds instead of truncating",
        },
        InjectedBug {
            id: "BUG-TEXT-COERCION-SIGN",
            fault: "bad_text_coercion_sign",
            is_logic: true,
            features: &["TYPE_TEXT", "OP_LT"],
            description: "text-to-number coercion ignores a leading minus sign",
        },
        InjectedBug {
            id: "BUG-SUM-EMPTY-GROUP",
            fault: "bad_sum_empty_group",
            is_logic: true,
            features: &["AGG_SUM"],
            description: "SUM over an empty group returns 0 instead of NULL",
        },
        InjectedBug {
            id: "BUG-COUNT-NULLS",
            fault: "bad_count_nulls",
            is_logic: true,
            features: &["AGG_COUNT"],
            description: "COUNT(col) counts NULLs",
        },
        InjectedBug {
            id: "BUG-VIEW-PREDICATE",
            fault: "bad_view_predicate_drop",
            is_logic: true,
            features: &["STMT_CREATE_VIEW", "CLAUSE_WHERE"],
            description: "view expansion drops the view's WHERE predicate",
        },
        InjectedBug {
            id: "BUG-GROUPBY-COLLATION",
            fault: "bad_group_by_collation",
            is_logic: true,
            features: &["CLAUSE_GROUP_BY", "TYPE_TEXT"],
            description: "GROUP BY on text keys groups case-insensitively",
        },
        InjectedBug {
            id: "BUG-HAVING-PUSHDOWN",
            fault: "bad_having_pushdown",
            is_logic: true,
            features: &["CLAUSE_HAVING"],
            description: "HAVING without aggregates evaluated before grouping",
        },
        InjectedBug {
            id: "BUG-LOST-ROLLBACK",
            fault: "txn_lost_rollback",
            is_logic: true,
            features: &["STMT_BEGIN", "STMT_ROLLBACK"],
            description:
                "ROLLBACK discards the undo log, leaving the transaction's writes in place",
        },
        InjectedBug {
            id: "BUG-PHANTOM-COMMIT",
            fault: "txn_phantom_commit",
            is_logic: true,
            features: &["STMT_BEGIN", "STMT_COMMIT"],
            description:
                "COMMIT applies the undo log, silently discarding the transaction's writes",
        },
        InjectedBug {
            id: "BUG-SAVEPOINT-COLLAPSE",
            fault: "txn_savepoint_collapse",
            is_logic: true,
            features: &["STMT_SAVEPOINT", "STMT_ROLLBACK_TO"],
            description:
                "ROLLBACK TO SAVEPOINT rewinds to transaction start, collapsing the savepoint stack",
        },
        InjectedBug {
            id: "BUG-DIRTY-READ",
            fault: "iso_dirty_read",
            is_logic: true,
            features: &["STMT_BEGIN", "STMT_COMMIT"],
            description:
                "a transaction's begin-time snapshot includes other sessions' uncommitted writes",
        },
        InjectedBug {
            id: "BUG-LOST-UPDATE",
            fault: "iso_lost_update",
            is_logic: true,
            features: &["STMT_BEGIN", "STMT_COMMIT"],
            description:
                "COMMIT skips first-committer-wins validation, clobbering concurrent committed writes",
        },
        InjectedBug {
            id: "BUG-NONREPEATABLE-READ",
            fault: "iso_nonrepeatable_read",
            is_logic: true,
            features: &["STMT_BEGIN", "STMT_COMMIT"],
            description:
                "in-transaction reads of unwritten tables see the latest committed state, not the snapshot",
        },
        InjectedBug {
            id: "BUG-DEEP-EXPR-CRASH",
            fault: "crash_on_deep_expressions",
            is_logic: false,
            features: &["CLAUSE_WHERE"],
            description: "internal error on deeply nested expressions",
        },
        InjectedBug {
            id: "BUG-MANY-JOINS-OOM",
            fault: "crash_on_many_joins",
            is_logic: false,
            features: &["JOIN_INNER", "JOIN_LEFT"],
            description: "out-of-memory style internal error on three-way joins",
        },
    ]
}

/// The catalog of injectable **infrastructure** faults: environmental
/// failures of the connection layer (crashes, hangs, drops, corruption),
/// not bugs in the DBMS's query processing. They are deliberately kept out
/// of [`catalog`] — a testing platform must *never* report them as logic
/// bugs; the campaign supervisor turns them into incidents instead. The
/// `fault` names here are the ids [`crate::FaultyConfig`] arms and the
/// substrings [`sqlancer_core::classify_infra_message`] keys on.
pub fn infra_catalog() -> Vec<InjectedBug> {
    vec![
        InjectedBug {
            id: "INFRA-BACKEND-CRASH",
            fault: "infra_crash",
            is_logic: false,
            features: &[],
            description: "backend process crashes (panic) mid-statement and stays down \
                          until the connection is re-established",
        },
        InjectedBug {
            id: "INFRA-QUERY-HANG",
            fault: "infra_hang",
            is_logic: false,
            features: &[],
            description: "statement hangs past the watchdog deadline (virtual-clock overrun)",
        },
        InjectedBug {
            id: "INFRA-CONNECTION-DROP",
            fault: "infra_drop",
            is_logic: false,
            features: &[],
            description: "transient connection drop: one statement fails, the next attempt \
                          succeeds",
        },
        InjectedBug {
            id: "INFRA-GARBLED-RESULT",
            fault: "infra_garble",
            is_logic: false,
            features: &[],
            description: "result set is truncated/garbled in transit and flagged by the \
                          wire-protocol checksum",
        },
        InjectedBug {
            id: "INFRA-PROBE-CRASH",
            fault: "infra_probe",
            is_logic: false,
            features: &[],
            description: "backend dies during the runtime capability probe; the next \
                          connection attempt succeeds",
        },
        InjectedBug {
            id: "INFRA-RESPAWN-FLAP",
            fault: "infra_flap",
            is_logic: false,
            features: &[],
            description: "backend flaps after a respawn: two consecutive attempts fail \
                          before it stabilises — enough to open a pool slot's circuit \
                          breaker",
        },
        InjectedBug {
            id: "INFRA-CAPABILITY-LIE",
            fault: "infra_capability_lie",
            is_logic: false,
            features: &[],
            description: "driver statically claims transaction support but the backend \
                          rejects BEGIN/COMMIT/ROLLBACK at runtime; the capability probe \
                          downgrades the claim and records the drift",
        },
    ]
}

/// Looks up catalog entries by fault name.
pub fn bugs_for_faults(faults: &[&str]) -> Vec<InjectedBug> {
    catalog()
        .into_iter()
        .filter(|b| faults.contains(&b.fault))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_engine::FaultConfig;
    use std::collections::BTreeSet;

    #[test]
    fn every_catalog_entry_maps_to_a_real_fault_switch() {
        let known: BTreeSet<_> = FaultConfig::all_names().into_iter().collect();
        for bug in catalog() {
            assert!(known.contains(bug.fault), "unknown fault {}", bug.fault);
        }
    }

    #[test]
    fn ids_are_unique_and_catalog_covers_every_fault() {
        let bugs = catalog();
        let ids: BTreeSet<_> = bugs.iter().map(|b| b.id).collect();
        assert_eq!(ids.len(), bugs.len());
        assert_eq!(bugs.len(), FaultConfig::all_names().len());
    }

    #[test]
    fn logic_and_other_bugs_are_both_present() {
        let bugs = catalog();
        assert!(bugs.iter().filter(|b| b.is_logic).count() >= 25);
        assert!(bugs.iter().filter(|b| !b.is_logic).count() >= 2);
    }

    #[test]
    fn lookup_by_fault_names() {
        let found = bugs_for_faults(&["bad_replace_type_affinity", "bad_bitwise_inversion"]);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn infra_catalog_is_disjoint_from_the_logic_catalog() {
        let logic_ids: BTreeSet<_> = catalog().iter().map(|b| b.id).collect();
        let logic_faults: BTreeSet<_> = catalog().iter().map(|b| b.fault).collect();
        for infra in infra_catalog() {
            assert!(!logic_ids.contains(infra.id));
            assert!(!logic_faults.contains(infra.fault));
            assert!(
                !infra.is_logic,
                "infrastructure faults are never logic bugs"
            );
            assert!(infra.fault.starts_with("infra_"));
        }
    }
}
