//! Dialect profiles: which SQL features a simulated DBMS accepts.
//!
//! A [`DialectProfile`] is the stand-in for a real DBMS's SQL dialect. The
//! underlying engine (`sql-engine`) implements the full feature set; the
//! profile *rejects* statements that use features outside the dialect,
//! producing exactly the "syntax/semantic error" feedback that the adaptive
//! generator learns from (challenge C1 of the paper).

use sql_ast::{
    BinaryOp, DataType, Expr, JoinType, ScalarFunction, Select, SelectItem, Statement, TableFactor,
    UnaryOp,
};
use sql_engine::TypingMode;
use std::collections::BTreeSet;

/// The feature-support matrix and behavioural quirks of one dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectProfile {
    /// Dialect name (matches the paper's Table 2 naming, lowercased).
    pub name: String,
    /// Typing discipline of the dialect.
    pub typing: TypingMode,
    /// Canonical feature names (see `sqlancer-core`'s naming convention)
    /// this dialect does **not** accept.
    pub unsupported: BTreeSet<String>,
    /// Inserted rows are only visible after `REFRESH TABLE` (CrateDB-like).
    pub requires_refresh: bool,
    /// DML must be followed by `COMMIT` (autocommit-off JDBC style).
    pub requires_commit: bool,
}

impl DialectProfile {
    /// A permissive dialect that accepts every feature (used as a baseline
    /// and in tests).
    pub fn permissive(name: impl Into<String>, typing: TypingMode) -> DialectProfile {
        DialectProfile {
            name: name.into(),
            typing,
            unsupported: BTreeSet::new(),
            requires_refresh: false,
            requires_commit: false,
        }
    }

    /// Marks a list of canonical feature names as unsupported.
    pub fn without(mut self, features: &[&str]) -> DialectProfile {
        for f in features {
            self.unsupported.insert((*f).to_string());
        }
        self
    }

    /// Whether the dialect supports a feature by canonical name.
    pub fn supports(&self, feature: &str) -> bool {
        !self.unsupported.contains(feature)
    }

    /// All canonical features of the generator universe this dialect
    /// supports (used by the perfect-knowledge baseline and Figure 7).
    pub fn supported_universe(&self) -> BTreeSet<String> {
        sqlancer_core::feature_universe()
            .into_iter()
            .map(|f| f.name().to_string())
            .filter(|f| self.supports(f))
            .collect()
    }

    /// Checks a parsed statement against the profile. Returns the name of
    /// the first unsupported feature encountered, if any.
    ///
    /// This runs for every statement on the campaign hot path, so it walks
    /// the AST with an early-exit visitor instead of materialising the
    /// feature list: nothing is allocated unless a feature is rejected or a
    /// data-dependent name (function, aggregate) must be formatted.
    pub fn first_unsupported(&self, stmt: &Statement) -> Option<String> {
        let mut found = None;
        walk_statement_features(stmt, &mut |feature| {
            if self.supports(feature) {
                true
            } else {
                found = Some(feature.to_string());
                false
            }
        });
        found
    }

    /// [`DialectProfile::first_unsupported`] for a bare query, without
    /// wrapping it in a [`Statement`]. Feature traversal order is identical
    /// to the statement path, so the reported feature (and therefore the
    /// error message) is byte-identical between the text path and the AST
    /// fast path.
    pub fn first_unsupported_select(&self, select: &Select) -> Option<String> {
        let mut found = None;
        walk_query_features(select, &mut |feature| {
            if self.supports(feature) {
                true
            } else {
                found = Some(feature.to_string());
                false
            }
        });
        found
    }
}

/// Collects the canonical feature names of a bare query, in the same order
/// as [`collect_statement_features`] applied to `Statement::Select`.
pub fn collect_query_features(select: &Select) -> Vec<String> {
    let mut out = Vec::new();
    walk_query_features(select, &mut |feature| {
        out.push(feature.to_string());
        true
    });
    out
}

/// Collects the canonical feature names used by a statement (statement kind,
/// clauses, join types, operators, functions, data types).
pub fn collect_statement_features(stmt: &Statement) -> Vec<String> {
    let mut out = Vec::new();
    walk_statement_features(stmt, &mut |feature| {
        out.push(feature.to_string());
        true
    });
    out
}

/// Walks every canonical feature name of a statement in collection order,
/// calling `f` for each; `f` returns `false` to stop the walk early. The
/// walker returns `false` when the walk was stopped.
fn walk_statement_features(stmt: &Statement, f: &mut impl FnMut(&str) -> bool) -> bool {
    if !f(stmt.feature_name()) {
        return false;
    }
    match stmt {
        Statement::CreateTable(create) => {
            for col in &create.columns {
                if !f(col.data_type.feature_name()) {
                    return false;
                }
                for c in &col.constraints {
                    let ok = match c {
                        sql_ast::ColumnConstraint::PrimaryKey => f("KW_PRIMARY_KEY"),
                        sql_ast::ColumnConstraint::NotNull => f("KW_NOT_NULL"),
                        sql_ast::ColumnConstraint::Unique => f("KW_UNIQUE"),
                        sql_ast::ColumnConstraint::Default(e) => {
                            f("KW_DEFAULT") && walk_expr_features(e, f)
                        }
                    };
                    if !ok {
                        return false;
                    }
                }
            }
            for c in &create.constraints {
                let ok = match c {
                    sql_ast::TableConstraint::PrimaryKey(_) => f("KW_PRIMARY_KEY"),
                    sql_ast::TableConstraint::Unique(_) => f("KW_UNIQUE"),
                };
                if !ok {
                    return false;
                }
            }
            true
        }
        Statement::CreateIndex(create) => {
            if create.unique && !f("KW_UNIQUE_INDEX") {
                return false;
            }
            match &create.where_clause {
                Some(w) => f("KW_PARTIAL_INDEX") && walk_expr_features(w, f),
                None => true,
            }
        }
        Statement::CreateView(create) => walk_select_features(&create.query, f),
        Statement::Insert(insert) => {
            if insert.or_ignore && !f("KW_OR_IGNORE") {
                return false;
            }
            for row in &insert.values {
                for e in row {
                    if !walk_expr_features(e, f) {
                        return false;
                    }
                }
            }
            true
        }
        Statement::Update(update) => {
            for (_, e) in &update.assignments {
                if !walk_expr_features(e, f) {
                    return false;
                }
            }
            match &update.where_clause {
                Some(w) => walk_expr_features(w, f),
                None => true,
            }
        }
        Statement::Delete(delete) => match &delete.where_clause {
            Some(w) => walk_expr_features(w, f),
            None => true,
        },
        Statement::Select(select) => walk_select_features(select, f),
        _ => true,
    }
}

/// Walks the features of a bare query: `STMT_SELECT` plus the select
/// features, in the statement walk's order.
fn walk_query_features(select: &Select, f: &mut impl FnMut(&str) -> bool) -> bool {
    f("STMT_SELECT") && walk_select_features(select, f)
}

fn walk_select_features(select: &Select, f: &mut impl FnMut(&str) -> bool) -> bool {
    if select.distinct && !f("CLAUSE_DISTINCT") {
        return false;
    }
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            if !walk_expr_features(expr, f) {
                return false;
            }
        }
    }
    for twj in &select.from {
        if !walk_factor_features(&twj.relation, f) {
            return false;
        }
        for join in &twj.joins {
            if !f(join.join_type.feature_name()) || !walk_factor_features(&join.relation, f) {
                return false;
            }
            if let Some(on) = &join.on {
                if !walk_expr_features(on, f) {
                    return false;
                }
            }
        }
    }
    if let Some(w) = &select.where_clause {
        if !f("CLAUSE_WHERE") || !walk_expr_features(w, f) {
            return false;
        }
    }
    if !select.group_by.is_empty() {
        if !f("CLAUSE_GROUP_BY") {
            return false;
        }
        for g in &select.group_by {
            if !walk_expr_features(g, f) {
                return false;
            }
        }
    }
    if let Some(h) = &select.having {
        if !f("CLAUSE_HAVING") || !walk_expr_features(h, f) {
            return false;
        }
    }
    if !select.order_by.is_empty() {
        if !f("CLAUSE_ORDER_BY") {
            return false;
        }
        for o in &select.order_by {
            if !walk_expr_features(&o.expr, f) {
                return false;
            }
        }
    }
    if select.limit.is_some() && !f("CLAUSE_LIMIT") {
        return false;
    }
    if select.offset.is_some() && !f("CLAUSE_OFFSET") {
        return false;
    }
    match &select.set_op {
        Some(set_op) => f("CLAUSE_SET_OPERATION") && walk_select_features(&set_op.right, f),
        None => true,
    }
}

fn walk_factor_features(factor: &TableFactor, f: &mut impl FnMut(&str) -> bool) -> bool {
    match factor {
        TableFactor::Derived { subquery, .. } => {
            f("CLAUSE_SUBQUERY") && walk_select_features(subquery, f)
        }
        _ => true,
    }
}

fn walk_expr_features(expr: &Expr, f: &mut impl FnMut(&str) -> bool) -> bool {
    let ok = match expr {
        Expr::Literal(v) => {
            let ty = v.data_type();
            ty == DataType::Null || f(ty.feature_name())
        }
        Expr::Unary { op, .. } => f(op.feature_name()),
        Expr::Binary { op, .. } => f(op.feature_name()),
        Expr::Function { func, .. } => f(func.feature_name()),
        Expr::Aggregate { func, .. } => f(func.feature_name()),
        Expr::Case { .. } => f("CLAUSE_CASE"),
        Expr::Cast { data_type, .. } => f("OP_CAST") && f(data_type.feature_name()),
        Expr::Between { .. } => f("OP_BETWEEN"),
        Expr::InList { .. } => f("OP_IN"),
        Expr::InSubquery { .. } => f("OP_IN") && f("CLAUSE_SUBQUERY"),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => f("CLAUSE_SUBQUERY"),
        Expr::IsNull { .. } => f("OP_IS_NULL"),
        Expr::IsBool { .. } => f("OP_IS_BOOL"),
        Expr::Like { .. } => f("OP_LIKE"),
        Expr::Column(_) => true,
    };
    if !ok {
        return false;
    }
    // Recurse into children (allocation-free) and embedded subqueries.
    let mut keep_going = true;
    expr.for_each_child(&mut |child| {
        if keep_going && !walk_expr_features(child, f) {
            keep_going = false;
        }
    });
    if !keep_going {
        return false;
    }
    match expr {
        Expr::InSubquery { subquery, .. } | Expr::ScalarSubquery(subquery) => {
            walk_select_features(subquery, f)
        }
        Expr::Exists { subquery, .. } => walk_select_features(subquery, f),
        _ => true,
    }
}

/// Convenience constructors for the feature names of AST elements, mirroring
/// `sqlancer-core`'s naming convention. Exposed for experiment harnesses.
pub fn operator_feature(op: BinaryOp) -> &'static str {
    op.feature_name()
}

/// Feature name of a unary operator.
pub fn unary_feature(op: UnaryOp) -> &'static str {
    op.feature_name()
}

/// Feature name of a scalar function.
pub fn function_feature(func: ScalarFunction) -> &'static str {
    func.feature_name()
}

/// Feature name of a join type.
pub fn join_feature(join: JoinType) -> &'static str {
    join.feature_name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_parser::parse_statement;

    #[test]
    fn profile_rejects_unsupported_statement_kind() {
        let profile = DialectProfile::permissive("crate-like", TypingMode::Strict)
            .without(&["STMT_CREATE_INDEX", "OP_NULLSAFE_EQ"]);
        let create_index = parse_statement("CREATE INDEX i0 ON t0(c0)").unwrap();
        assert_eq!(
            profile.first_unsupported(&create_index),
            Some("STMT_CREATE_INDEX".to_string())
        );
        let query = parse_statement("SELECT * FROM t0 WHERE c0 <=> 1").unwrap();
        assert_eq!(
            profile.first_unsupported(&query),
            Some("OP_NULLSAFE_EQ".to_string())
        );
        let fine = parse_statement("SELECT * FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(profile.first_unsupported(&fine), None);
    }

    #[test]
    fn feature_collection_sees_nested_constructs() {
        let stmt = parse_statement(
            "SELECT NULLIF(c0, 1) FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 \
             WHERE (c0 IN (SELECT c0 FROM t2)) AND SIN(1) > 0 GROUP BY c0 LIMIT 3",
        )
        .unwrap();
        let features = collect_statement_features(&stmt);
        for expected in [
            "STMT_SELECT",
            "JOIN_LEFT",
            "CLAUSE_WHERE",
            "CLAUSE_GROUP_BY",
            "CLAUSE_LIMIT",
            "CLAUSE_SUBQUERY",
            "FN_NULLIF",
            "FN_SIN",
            "OP_IN",
            "OP_GT",
            "OP_AND",
        ] {
            assert!(
                features.iter().any(|f| f == expected),
                "missing {expected} in {features:?}"
            );
        }
    }

    #[test]
    fn supported_universe_shrinks_with_unsupported_features() {
        let full = DialectProfile::permissive("full", TypingMode::Dynamic).supported_universe();
        let restricted = DialectProfile::permissive("restricted", TypingMode::Dynamic)
            .without(&["JOIN_FULL", "FN_SIN", "OP_NULLSAFE_EQ"])
            .supported_universe();
        assert_eq!(full.len(), restricted.len() + 3);
    }
}
