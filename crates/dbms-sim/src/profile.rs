//! Dialect profiles: which SQL features a simulated DBMS accepts.
//!
//! A [`DialectProfile`] is the stand-in for a real DBMS's SQL dialect. The
//! underlying engine (`sql-engine`) implements the full feature set; the
//! profile *rejects* statements that use features outside the dialect,
//! producing exactly the "syntax/semantic error" feedback that the adaptive
//! generator learns from (challenge C1 of the paper).

use sql_ast::{
    BinaryOp, DataType, Expr, JoinType, ScalarFunction, Select, SelectItem, Statement,
    TableFactor, UnaryOp,
};
use sql_engine::TypingMode;
use std::collections::BTreeSet;

/// The feature-support matrix and behavioural quirks of one dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectProfile {
    /// Dialect name (matches the paper's Table 2 naming, lowercased).
    pub name: String,
    /// Typing discipline of the dialect.
    pub typing: TypingMode,
    /// Canonical feature names (see `sqlancer-core`'s naming convention)
    /// this dialect does **not** accept.
    pub unsupported: BTreeSet<String>,
    /// Inserted rows are only visible after `REFRESH TABLE` (CrateDB-like).
    pub requires_refresh: bool,
    /// DML must be followed by `COMMIT` (autocommit-off JDBC style).
    pub requires_commit: bool,
}

impl DialectProfile {
    /// A permissive dialect that accepts every feature (used as a baseline
    /// and in tests).
    pub fn permissive(name: impl Into<String>, typing: TypingMode) -> DialectProfile {
        DialectProfile {
            name: name.into(),
            typing,
            unsupported: BTreeSet::new(),
            requires_refresh: false,
            requires_commit: false,
        }
    }

    /// Marks a list of canonical feature names as unsupported.
    pub fn without(mut self, features: &[&str]) -> DialectProfile {
        for f in features {
            self.unsupported.insert((*f).to_string());
        }
        self
    }

    /// Whether the dialect supports a feature by canonical name.
    pub fn supports(&self, feature: &str) -> bool {
        !self.unsupported.contains(feature)
    }

    /// All canonical features of the generator universe this dialect
    /// supports (used by the perfect-knowledge baseline and Figure 7).
    pub fn supported_universe(&self) -> BTreeSet<String> {
        sqlancer_core::feature_universe()
            .into_iter()
            .map(|f| f.name().to_string())
            .filter(|f| self.supports(f))
            .collect()
    }

    /// Checks a parsed statement against the profile. Returns the name of
    /// the first unsupported feature encountered, if any.
    pub fn first_unsupported(&self, stmt: &Statement) -> Option<String> {
        collect_statement_features(stmt)
            .into_iter()
            .find(|f| !self.supports(f))
    }
}

/// Collects the canonical feature names used by a statement (statement kind,
/// clauses, join types, operators, functions, data types).
pub fn collect_statement_features(stmt: &Statement) -> Vec<String> {
    let mut out = vec![stmt.feature_name().to_string()];
    match stmt {
        Statement::CreateTable(create) => {
            for col in &create.columns {
                out.push(format!("TYPE_{}", col.data_type.sql_keyword()));
                for c in &col.constraints {
                    match c {
                        sql_ast::ColumnConstraint::PrimaryKey => out.push("KW_PRIMARY_KEY".into()),
                        sql_ast::ColumnConstraint::NotNull => out.push("KW_NOT_NULL".into()),
                        sql_ast::ColumnConstraint::Unique => out.push("KW_UNIQUE".into()),
                        sql_ast::ColumnConstraint::Default(e) => {
                            out.push("KW_DEFAULT".into());
                            collect_expr_features(e, &mut out);
                        }
                    }
                }
            }
            for c in &create.constraints {
                match c {
                    sql_ast::TableConstraint::PrimaryKey(_) => out.push("KW_PRIMARY_KEY".into()),
                    sql_ast::TableConstraint::Unique(_) => out.push("KW_UNIQUE".into()),
                }
            }
        }
        Statement::CreateIndex(create) => {
            if create.unique {
                out.push("KW_UNIQUE_INDEX".into());
            }
            if let Some(w) = &create.where_clause {
                out.push("KW_PARTIAL_INDEX".into());
                collect_expr_features(w, &mut out);
            }
        }
        Statement::CreateView(create) => collect_select_features(&create.query, &mut out),
        Statement::Insert(insert) => {
            if insert.or_ignore {
                out.push("KW_OR_IGNORE".into());
            }
            for row in &insert.values {
                for e in row {
                    collect_expr_features(e, &mut out);
                }
            }
        }
        Statement::Update(update) => {
            for (_, e) in &update.assignments {
                collect_expr_features(e, &mut out);
            }
            if let Some(w) = &update.where_clause {
                collect_expr_features(w, &mut out);
            }
        }
        Statement::Delete(delete) => {
            if let Some(w) = &delete.where_clause {
                collect_expr_features(w, &mut out);
            }
        }
        Statement::Select(select) => collect_select_features(select, &mut out),
        _ => {}
    }
    out
}

fn collect_select_features(select: &Select, out: &mut Vec<String>) {
    if select.distinct {
        out.push("CLAUSE_DISTINCT".into());
    }
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr_features(expr, out);
        }
    }
    for twj in &select.from {
        collect_factor_features(&twj.relation, out);
        for join in &twj.joins {
            out.push(join.join_type.feature_name().to_string());
            collect_factor_features(&join.relation, out);
            if let Some(on) = &join.on {
                collect_expr_features(on, out);
            }
        }
    }
    if let Some(w) = &select.where_clause {
        out.push("CLAUSE_WHERE".into());
        collect_expr_features(w, out);
    }
    if !select.group_by.is_empty() {
        out.push("CLAUSE_GROUP_BY".into());
        for g in &select.group_by {
            collect_expr_features(g, out);
        }
    }
    if let Some(h) = &select.having {
        out.push("CLAUSE_HAVING".into());
        collect_expr_features(h, out);
    }
    if !select.order_by.is_empty() {
        out.push("CLAUSE_ORDER_BY".into());
        for o in &select.order_by {
            collect_expr_features(&o.expr, out);
        }
    }
    if select.limit.is_some() {
        out.push("CLAUSE_LIMIT".into());
    }
    if select.offset.is_some() {
        out.push("CLAUSE_OFFSET".into());
    }
    if let Some(set_op) = &select.set_op {
        out.push("CLAUSE_SET_OPERATION".into());
        collect_select_features(&set_op.right, out);
    }
}

fn collect_factor_features(factor: &TableFactor, out: &mut Vec<String>) {
    if let TableFactor::Derived { subquery, .. } = factor {
        out.push("CLAUSE_SUBQUERY".into());
        collect_select_features(subquery, out);
    }
}

fn collect_expr_features(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Literal(v) => {
            let ty = v.data_type();
            if ty != DataType::Null {
                out.push(format!("TYPE_{}", ty.sql_keyword()));
            }
        }
        Expr::Unary { op, .. } => out.push(op.feature_name().to_string()),
        Expr::Binary { op, .. } => out.push(op.feature_name().to_string()),
        Expr::Function { func, .. } => out.push(func.feature_name()),
        Expr::Aggregate { func, .. } => out.push(func.feature_name()),
        Expr::Case { .. } => out.push("CLAUSE_CASE".into()),
        Expr::Cast { data_type, .. } => {
            out.push("OP_CAST".into());
            out.push(format!("TYPE_{}", data_type.sql_keyword()));
        }
        Expr::Between { .. } => out.push("OP_BETWEEN".into()),
        Expr::InList { .. } => out.push("OP_IN".into()),
        Expr::InSubquery { .. } => {
            out.push("OP_IN".into());
            out.push("CLAUSE_SUBQUERY".into());
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            out.push("CLAUSE_SUBQUERY".into());
        }
        Expr::IsNull { .. } => out.push("OP_IS_NULL".into()),
        Expr::IsBool { .. } => out.push("OP_IS_BOOL".into()),
        Expr::Like { .. } => out.push("OP_LIKE".into()),
        Expr::Column(_) => {}
    }
    // Recurse into children and embedded subqueries.
    for child in expr.children() {
        collect_expr_features(child, out);
    }
    match expr {
        Expr::InSubquery { subquery, .. } | Expr::ScalarSubquery(subquery) => {
            collect_select_features(subquery, out)
        }
        Expr::Exists { subquery, .. } => collect_select_features(subquery, out),
        _ => {}
    }
}

/// Convenience constructors for the feature names of AST elements, mirroring
/// `sqlancer-core`'s naming convention. Exposed for experiment harnesses.
pub fn operator_feature(op: BinaryOp) -> &'static str {
    op.feature_name()
}

/// Feature name of a unary operator.
pub fn unary_feature(op: UnaryOp) -> &'static str {
    op.feature_name()
}

/// Feature name of a scalar function.
pub fn function_feature(func: ScalarFunction) -> String {
    func.feature_name()
}

/// Feature name of a join type.
pub fn join_feature(join: JoinType) -> &'static str {
    join.feature_name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_parser::parse_statement;

    #[test]
    fn profile_rejects_unsupported_statement_kind() {
        let profile = DialectProfile::permissive("crate-like", TypingMode::Strict)
            .without(&["STMT_CREATE_INDEX", "OP_NULLSAFE_EQ"]);
        let create_index = parse_statement("CREATE INDEX i0 ON t0(c0)").unwrap();
        assert_eq!(
            profile.first_unsupported(&create_index),
            Some("STMT_CREATE_INDEX".to_string())
        );
        let query = parse_statement("SELECT * FROM t0 WHERE c0 <=> 1").unwrap();
        assert_eq!(
            profile.first_unsupported(&query),
            Some("OP_NULLSAFE_EQ".to_string())
        );
        let fine = parse_statement("SELECT * FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(profile.first_unsupported(&fine), None);
    }

    #[test]
    fn feature_collection_sees_nested_constructs() {
        let stmt = parse_statement(
            "SELECT NULLIF(c0, 1) FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 \
             WHERE (c0 IN (SELECT c0 FROM t2)) AND SIN(1) > 0 GROUP BY c0 LIMIT 3",
        )
        .unwrap();
        let features = collect_statement_features(&stmt);
        for expected in [
            "STMT_SELECT",
            "JOIN_LEFT",
            "CLAUSE_WHERE",
            "CLAUSE_GROUP_BY",
            "CLAUSE_LIMIT",
            "CLAUSE_SUBQUERY",
            "FN_NULLIF",
            "FN_SIN",
            "OP_IN",
            "OP_GT",
            "OP_AND",
        ] {
            assert!(
                features.iter().any(|f| f == expected),
                "missing {expected} in {features:?}"
            );
        }
    }

    #[test]
    fn supported_universe_shrinks_with_unsupported_features() {
        let full = DialectProfile::permissive("full", TypingMode::Dynamic).supported_universe();
        let restricted = DialectProfile::permissive("restricted", TypingMode::Dynamic)
            .without(&["JOIN_FULL", "FN_SIN", "OP_NULLSAFE_EQ"])
            .supported_universe();
        assert_eq!(full.len(), restricted.len() + 3);
    }
}
