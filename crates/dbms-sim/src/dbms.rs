//! A simulated DBMS: engine + dialect profile + injected bugs.

use crate::bugs::{bugs_for_faults, InjectedBug};
use crate::profile::DialectProfile;
use sql_ast::{Select, Statement};
use sql_engine::{
    CoverageTracker, CowStats, Database, Engine, EngineConfig, EngineSession, EvalStrategy,
    ExecutionMode,
};
use sqlancer_core::{
    check_isolation, check_norec, check_rollback, check_tlp, DbmsConnection, DialectQuirks,
    EngineCoverage, OracleKind, OracleOutcome, QueryResult, ReducibleCase, ScheduleCase,
    StateCheckpoint, StatementOutcome, StorageMetrics, TxnCase,
};

/// A simulated DBMS under test: a dialect profile layered over the
/// in-memory engine, with a set of injected bugs as ground truth.
///
/// The DBMS owns a shared [`Engine`] core and drives it through a primary
/// [`EngineSession`]; [`SimulatedDbms::connect`] opens additional sessions
/// over the same core, which is how the isolation oracle interleaves two
/// connections on one engine.
#[derive(Debug)]
pub struct SimulatedDbms {
    profile: DialectProfile,
    faults: Vec<&'static str>,
    engine: Engine,
    session: EngineSession,
    /// Storage counters accumulated from engines already retired by
    /// [`DbmsConnection::reset`]; the live engine's counters are added on
    /// read, so [`DbmsConnection::storage_metrics`] is cumulative for the
    /// connection's lifetime.
    retired_cow: CowStats,
    /// Coverage points accumulated from engines already retired by `reset`
    /// or `restore` — same lifecycle as `retired_cow`, so the coverage the
    /// connection reports is **monotone** for its whole lifetime (the
    /// contract [`DbmsConnection::engine_coverage`] demands: unions over
    /// polls must be independent of poll cadence).
    retired_coverage: CoverageTracker,
    /// Virtual clock: one tick per statement or query, charged at the
    /// shared funnel of the text and AST paths so both execution paths cost
    /// identically. Monotone for the connection's lifetime — `reset` and
    /// `restore` replace the engine but never rewind the clock, exactly
    /// like `retired_cow`.
    ticks: u64,
}

impl Clone for SimulatedDbms {
    /// Clones the committed state into an independent engine (open
    /// transactions of other sessions are not carried over) — the
    /// semantics ground-truth bisection relies on. With CoW storage the
    /// clone shares table versions until either side writes.
    fn clone(&self) -> SimulatedDbms {
        let engine = self.engine.clone();
        let session = engine.session();
        SimulatedDbms {
            profile: self.profile.clone(),
            faults: self.faults.clone(),
            engine,
            session,
            retired_cow: self.retired_cow,
            retired_coverage: self.retired_coverage.clone(),
            ticks: self.ticks,
        }
    }
}

impl SimulatedDbms {
    /// Creates a simulated DBMS from a profile and a set of engine fault
    /// names (the injected bugs), using the default (compiled) expression
    /// evaluator.
    pub fn new(profile: DialectProfile, faults: Vec<&'static str>) -> SimulatedDbms {
        SimulatedDbms::with_eval(profile, faults, EvalStrategy::default())
    }

    /// Creates a simulated DBMS with an explicit expression evaluation
    /// strategy — [`EvalStrategy::TreeWalk`] is the reference arm of the
    /// compiled↔tree parity suite and the throughput benchmark.
    pub fn with_eval(
        profile: DialectProfile,
        faults: Vec<&'static str>,
        eval: EvalStrategy,
    ) -> SimulatedDbms {
        let engine = Engine::new(Self::engine_config(&profile, &faults, eval));
        let session = engine.session();
        SimulatedDbms {
            profile,
            faults,
            engine,
            session,
            retired_cow: CowStats::default(),
            retired_coverage: CoverageTracker::new(),
            ticks: 0,
        }
    }

    /// The evaluation strategy this DBMS's engine runs with. Read from the
    /// engine configuration (the single source of truth) so rebuilds in
    /// [`DbmsConnection::reset`] can never drift from it.
    fn eval(&self) -> EvalStrategy {
        self.engine.config().eval
    }

    fn engine_config(
        profile: &DialectProfile,
        faults: &[&'static str],
        eval: EvalStrategy,
    ) -> EngineConfig {
        let mut config = EngineConfig {
            typing: profile.typing,
            eval,
            ..EngineConfig::default()
        };
        for fault in faults {
            config.faults.enable(fault);
        }
        config
    }

    /// The dialect profile.
    pub fn profile(&self) -> &DialectProfile {
        &self.profile
    }

    /// The injected bugs, with their ground-truth metadata.
    pub fn injected_bugs(&self) -> Vec<InjectedBug> {
        bugs_for_faults(&self.faults)
    }

    /// The committed engine database (for inspection in experiments, e.g.
    /// coverage accounting for Table 3). Uncommitted session workspaces are
    /// not visible here.
    pub fn engine(&self) -> std::cell::Ref<'_, Database> {
        self.engine.committed()
    }

    /// Number of commit attempts the engine rejected with a serialization
    /// failure (first-committer-wins conflict aborts).
    pub fn conflict_aborts(&self) -> u64 {
        self.engine.conflict_aborts()
    }

    /// Opens an additional connection over the same engine. The returned
    /// session shares the committed state with this DBMS, holds its own
    /// transaction state, and applies the same dialect gating; its `reset`
    /// is a no-op (only the owning DBMS may wipe shared state).
    pub fn connect(&self) -> SimulatedSession {
        SimulatedSession {
            profile: self.profile.clone(),
            session: self.engine.session(),
        }
    }

    /// A copy of this DBMS with one fault disabled — the "fixed version"
    /// used for ground-truth bug identification.
    fn without_fault(&self, fault: &str) -> SimulatedDbms {
        let faults: Vec<&'static str> = self
            .faults
            .iter()
            .copied()
            .filter(|f| *f != fault)
            .collect();
        SimulatedDbms::with_eval(self.profile.clone(), faults, self.eval())
    }

    /// Executes a profile-gated query through the engine — the shared tail
    /// of the text path and the AST fast path. Mirrors what
    /// `Statement::Select` execution does in the engine (statement coverage
    /// plus the optimized pipeline) without constructing a [`Statement`].
    /// Charges one virtual tick: text and AST queries land here after
    /// identical gating, so both paths cost the same.
    fn run_query(&mut self, select: &Select) -> Result<QueryResult, String> {
        self.ticks += 1;
        run_session_query(&self.session, select)
    }

    fn run_case(&mut self, case: &ReducibleCase) -> OracleOutcome {
        self.reset();
        for sql in &case.setup {
            let _ = self.execute(sql);
        }
        match case.oracle {
            OracleKind::Tlp => check_tlp(
                self,
                &case.query,
                &case.predicate,
                &case.features,
                &case.setup,
            ),
            OracleKind::NoRec => check_norec(
                self,
                &case.query,
                &case.predicate,
                &case.features,
                &case.setup,
            ),
            // Rollback-oracle cases are transactional sessions
            // ([`TxnCase`]), replayed via [`SimulatedDbms::run_txn_case`];
            // isolation cases are schedules ([`ScheduleCase`]).
            OracleKind::Rollback => {
                OracleOutcome::Invalid("rollback cases replay as TxnCase".into())
            }
            OracleKind::Isolation => {
                OracleOutcome::Invalid("isolation cases replay as ScheduleCase".into())
            }
        }
    }

    fn run_txn_case(&mut self, case: &TxnCase) -> OracleOutcome {
        check_rollback(
            self,
            &case.table,
            &case.statements,
            &case.features,
            &case.setup,
        )
    }

    fn run_schedule_case(&mut self, case: &ScheduleCase) -> OracleOutcome {
        check_isolation(self, &case.schedule, &case.features, &case.setup).outcome
    }

    /// Identifies which injected bugs a reduced test case triggers, by
    /// replaying it against variants of this DBMS with one fault disabled at
    /// a time (the in-silico analogue of bisecting to a fix commit, which is
    /// how the paper establishes uniqueness on CrateDB in Section 5.5).
    pub fn ground_truth_bugs(&self, case: &ReducibleCase) -> Vec<&'static str> {
        let mut reproducer = self.clone();
        if !matches!(reproducer.run_case(case), OracleOutcome::Bug(_)) {
            return Vec::new();
        }
        let mut causes = Vec::new();
        for fault in &self.faults {
            let mut fixed = self.without_fault(fault);
            if !matches!(fixed.run_case(case), OracleOutcome::Bug(_)) {
                if let Some(bug) = bugs_for_faults(&[fault]).first() {
                    causes.push(bug.id);
                }
            }
        }
        causes
    }

    /// [`SimulatedDbms::ground_truth_bugs`] for a transactional test case
    /// flagged by the rollback oracle: the case is replayed against variants
    /// of this DBMS with one fault disabled at a time.
    pub fn ground_truth_txn_bugs(&self, case: &TxnCase) -> Vec<&'static str> {
        let mut reproducer = self.clone();
        if !matches!(reproducer.run_txn_case(case), OracleOutcome::Bug(_)) {
            return Vec::new();
        }
        let mut causes = Vec::new();
        for fault in &self.faults {
            let mut fixed = self.without_fault(fault);
            if !matches!(fixed.run_txn_case(case), OracleOutcome::Bug(_)) {
                if let Some(bug) = bugs_for_faults(&[fault]).first() {
                    causes.push(bug.id);
                }
            }
        }
        causes
    }

    /// [`SimulatedDbms::ground_truth_bugs`] for a concurrent schedule
    /// flagged by the isolation oracle: the schedule is replayed against
    /// variants of this DBMS with one fault disabled at a time.
    pub fn ground_truth_schedule_bugs(&self, case: &ScheduleCase) -> Vec<&'static str> {
        let mut reproducer = self.clone();
        if !matches!(reproducer.run_schedule_case(case), OracleOutcome::Bug(_)) {
            return Vec::new();
        }
        let mut causes = Vec::new();
        for fault in &self.faults {
            let mut fixed = self.without_fault(fault);
            if !matches!(fixed.run_schedule_case(case), OracleOutcome::Bug(_)) {
                if let Some(bug) = bugs_for_faults(&[fault]).first() {
                    causes.push(bug.id);
                }
            }
        }
        causes
    }
}

/// Executes a profile-gated query through a session — the shared tail of
/// the text path and the AST fast path for both the primary connection and
/// the extra sessions [`SimulatedDbms::connect`] opens.
fn run_session_query(session: &EngineSession, select: &Select) -> Result<QueryResult, String> {
    session.record_coverage(|cov| cov.statement("STMT_SELECT"));
    match session.query(select, ExecutionMode::Optimized) {
        Ok(rs) => Ok(QueryResult {
            columns: rs.columns,
            rows: rs.rows,
        }),
        Err(err) => Err(err.to_string()),
    }
}

/// An additional connection over a [`SimulatedDbms`]'s engine, opened with
/// [`SimulatedDbms::connect`]: same dialect gating, same committed state,
/// independent transaction state.
#[derive(Debug)]
pub struct SimulatedSession {
    profile: DialectProfile,
    session: EngineSession,
}

impl DbmsConnection for SimulatedSession {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        let stmt: Statement = match sql_parser::parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(err) => return StatementOutcome::Failure(format!("syntax error: {err}")),
        };
        self.execute_ast(&stmt)
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let stmt: Statement =
            sql_parser::parse_statement(sql).map_err(|e| format!("syntax error: {e}"))?;
        if let Some(feature) = self.profile.first_unsupported(&stmt) {
            return Err(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        match &stmt {
            Statement::Select(select) => run_session_query(&self.session, select),
            _ => Err("not a query".to_string()),
        }
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        if let Some(feature) = self.profile.first_unsupported(stmt) {
            return StatementOutcome::Failure(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        match self.session.execute(stmt) {
            Ok(_) => StatementOutcome::Success,
            Err(err) => StatementOutcome::Failure(err.to_string()),
        }
    }

    fn query_ast(&mut self, select: &Select) -> Result<QueryResult, String> {
        if let Some(feature) = self.profile.first_unsupported_select(select) {
            return Err(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        run_session_query(&self.session, select)
    }

    /// A no-op: only the owning [`SimulatedDbms`] may wipe the shared
    /// engine. (Oracles never reset the extra sessions they open.)
    fn reset(&mut self) {}

    fn quirks(&self) -> DialectQuirks {
        DialectQuirks {
            requires_refresh: self.profile.requires_refresh,
            requires_commit: self.profile.requires_commit,
        }
    }
}

impl DbmsConnection for SimulatedDbms {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        let stmt: Statement = match sql_parser::parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(err) => return StatementOutcome::Failure(format!("syntax error: {err}")),
        };
        self.execute_ast(&stmt)
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let stmt: Statement =
            sql_parser::parse_statement(sql).map_err(|e| format!("syntax error: {e}"))?;
        if let Some(feature) = self.profile.first_unsupported(&stmt) {
            return Err(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        match &stmt {
            Statement::Select(select) => self.run_query(select),
            _ => Err("not a query".to_string()),
        }
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        // AST fast path: no lexing or parsing — the statement goes straight
        // into profile gating and the engine. One tick per statement: the
        // text path funnels here after parsing, so both paths cost the same.
        self.ticks += 1;
        if let Some(feature) = self.profile.first_unsupported(stmt) {
            return StatementOutcome::Failure(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        match self.session.execute(stmt) {
            Ok(_) => StatementOutcome::Success,
            Err(err) => StatementOutcome::Failure(err.to_string()),
        }
    }

    fn query_ast(&mut self, select: &Select) -> Result<QueryResult, String> {
        // Gating traverses features in the same order as the text path, so
        // rejected queries produce byte-identical error messages.
        if let Some(feature) = self.profile.first_unsupported_select(select) {
            return Err(format!(
                "{}: unsupported feature {feature}",
                self.profile.name
            ));
        }
        self.run_query(select)
    }

    fn reset(&mut self) {
        // A fresh engine core: sessions opened over the previous core keep
        // their (now detached) shared state and die with it. The retired
        // engine's storage counters and coverage points fold into the
        // cumulative totals first.
        self.retired_cow.merge(&self.engine.cow_stats());
        self.retired_coverage
            .merge(&self.engine.committed().coverage_snapshot());
        self.engine = Engine::new(Self::engine_config(
            &self.profile,
            &self.faults,
            self.eval(),
        ));
        self.session = self.engine.session();
    }

    fn quirks(&self) -> DialectQuirks {
        DialectQuirks {
            requires_refresh: self.profile.requires_refresh,
            requires_commit: self.profile.requires_commit,
        }
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        // Extra sessions do not advance the primary connection's virtual
        // clock, which keeps the supervisor's watchdog accounting
        // single-sourced (mirrors [`crate::faulty::FaultyConnection`]).
        Some(Box::new(self.connect()))
    }

    fn virtual_ticks(&self) -> u64 {
        self.ticks
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        let mut cow = self.retired_cow;
        cow.merge(&self.engine.cow_stats());
        Ok(Some(StorageMetrics {
            txn_begins: cow.txn_begins,
            tables_snapshotted: cow.tables_snapshotted,
            tables_cow_cloned: cow.tables_cow_cloned,
            conflicts_avoided: cow.conflicts_avoided,
        }))
    }

    fn engine_coverage(&self) -> Option<EngineCoverage> {
        let mut tracker = self.retired_coverage.clone();
        tracker.merge(&self.engine.committed().coverage_snapshot());
        let mut coverage = EngineCoverage::default();
        for (plane, points) in [
            ("plan_operators", &tracker.plan_operators),
            ("functions", &tracker.functions),
            ("operators", &tracker.operators),
            ("coercions", &tracker.coercions),
            ("statements", &tracker.statements),
        ] {
            for point in points.iter() {
                coverage.record(plane, point);
            }
        }
        Some(coverage)
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        // An O(tables) CoW engine clone with zeroed counters: restoring
        // must not re-report storage work the live engine already counted.
        Some(StateCheckpoint(Box::new(self.engine.checkpoint_clone())))
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        let Some(engine) = checkpoint.0.downcast_ref::<Engine>() else {
            return false;
        };
        // The replaced engine's counters fold into the cumulative total,
        // exactly like `reset`; the restored clone starts from zero (its
        // coverage rewinds to the checkpoint's, so folding the live
        // engine's points first is what keeps the report monotone).
        self.retired_cow.merge(&self.engine.cow_stats());
        self.retired_coverage
            .merge(&self.engine.committed().coverage_snapshot());
        self.engine = engine.clone();
        self.session = self.engine.session();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_ast::{Expr, Select, SelectItem, TableWithJoins};
    use sql_engine::TypingMode;
    use sqlancer_core::FeatureSet;

    fn permissive_with(faults: Vec<&'static str>) -> SimulatedDbms {
        SimulatedDbms::new(
            DialectProfile::permissive("testdb", TypingMode::Dynamic),
            faults,
        )
    }

    #[test]
    fn executes_sql_and_answers_queries() {
        let mut dbms = permissive_with(vec![]);
        assert!(dbms.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
        assert!(dbms
            .execute("INSERT INTO t0 (c0) VALUES (1), (2)")
            .is_success());
        let rs = dbms.query("SELECT c0 FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(rs.row_count(), 1);
        assert!(dbms.query("SELECT broken FROM").is_err());
        dbms.reset();
        assert!(
            dbms.query("SELECT c0 FROM t0").is_err(),
            "reset drops state"
        );
    }

    #[test]
    fn profile_gating_rejects_unsupported_features() {
        let profile = DialectProfile::permissive("no-index", TypingMode::Dynamic)
            .without(&["STMT_CREATE_INDEX", "FN_SIN"]);
        let mut dbms = SimulatedDbms::new(profile, vec![]);
        dbms.execute("CREATE TABLE t0 (c0 INTEGER)");
        assert!(!dbms.execute("CREATE INDEX i0 ON t0(c0)").is_success());
        assert!(dbms.query("SELECT SIN(c0) FROM t0").is_err());
        assert!(dbms.query("SELECT COS(c0) FROM t0").is_ok());
    }

    #[test]
    fn ground_truth_identifies_the_injected_bug() {
        // A NULL-dropping NOT-elimination bug, replayed as a reducible test
        // case against a DBMS with two injected faults: only the
        // NOT-elimination fault is identified as the cause (the analogue of
        // bisecting a CrateDB bug to its fix commit in Section 5.5).
        let dbms = permissive_with(vec!["bad_not_elimination", "bad_bitwise_inversion"]);
        let predicate = Expr::qualified_column("t0", "c0").eq(Expr::integer(1));
        let case = ReducibleCase {
            setup: vec![
                "CREATE TABLE t0 (c0 INTEGER)".to_string(),
                "INSERT INTO t0 (c0) VALUES (1), (NULL)".to_string(),
            ],
            query: Select {
                projections: vec![SelectItem::Wildcard],
                from: vec![TableWithJoins::table("t0")],
                where_clause: Some(predicate.clone()),
                ..Select::new()
            },
            predicate,
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        let causes = dbms.ground_truth_bugs(&case);
        assert_eq!(causes, vec!["BUG-NOT-NULL-SEMANTICS"]);
    }

    #[test]
    fn fault_free_dbms_has_no_ground_truth_bugs() {
        let dbms = permissive_with(vec![]);
        let case = ReducibleCase {
            setup: vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            query: Select {
                projections: vec![SelectItem::Wildcard],
                from: vec![TableWithJoins::table("t0")],
                where_clause: Some(Expr::column("c0").is_null()),
                ..Select::new()
            },
            predicate: Expr::column("c0").is_null(),
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        assert!(dbms.ground_truth_bugs(&case).is_empty());
    }
}
