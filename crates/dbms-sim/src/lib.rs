//! # dbms-sim
//!
//! The simulated DBMS fleet for the SQLancer++ reproduction.
//!
//! The paper evaluates SQLancer++ against 18 third-party DBMSs; this crate
//! substitutes them with simulated dialects built on the `sql-engine`
//! substrate:
//!
//! * [`DialectProfile`] — which SQL features a dialect accepts, its typing
//!   discipline and behavioural quirks (the source of the "syntax error"
//!   feedback the adaptive generator learns from);
//! * [`bugs`] — the injected-bug catalog providing *ground truth* for
//!   unique-bug counting;
//! * [`SimulatedDbms`] — a [`sqlancer_core::DbmsConnection`] implementation
//!   combining a profile, the engine and a set of injected bugs;
//! * [`fleet`] — 18 named presets mirroring Table 2 of the paper.
//!
//! # Examples
//!
//! ```
//! use dbms_sim::preset_by_name;
//! use sqlancer_core::DbmsConnection;
//!
//! let mut dbms = preset_by_name("sqlite").unwrap().instantiate();
//! assert!(dbms.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
//! assert!(dbms.query("SELECT * FROM t0").is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bugs;
mod dbms;
mod faulty;
mod fleet;
mod profile;
mod runner;

pub use bugs::{bugs_for_faults, catalog, infra_catalog, InjectedBug};
pub use dbms::{SimulatedDbms, SimulatedSession};
pub use faulty::{FaultPlan, FaultyConfig, FaultyConnection, InfraFaultKind};
pub use fleet::{
    fleet, fleet_drivers, preset_by_name, validity_experiment_dialects, DialectPreset, SimDriver,
};
pub use profile::{
    collect_query_features, collect_statement_features, function_feature, join_feature,
    operator_feature, unary_feature, DialectProfile,
};
pub use runner::{
    available_threads, derive_dialect_seed, derive_shard_seed, observed_infra_kinds,
    run_campaign_partitioned, run_campaign_partitioned_pooled, run_campaign_partitioned_supervised,
    run_campaign_partitioned_traced, run_fleet_parallel, run_fleet_parallel_drivers,
    run_fleet_serial, run_fleet_serial_drivers, run_one_driver, shard_checkpoint_path,
    ExecutionPath, FleetReport, PartitionedCampaign,
};
