//! The fleet campaign runner: one campaign per dialect, serial or sharded
//! across threads.
//!
//! The paper's platform tests 18 DBMSs; at fleet scale the campaigns are
//! embarrassingly parallel — each dialect gets its own connection, its own
//! adaptive generator and its own prioritizer. The runner derives a
//! deterministic per-dialect seed from the campaign seed, so
//!
//! * serial and parallel runs produce **identical** per-dialect reports
//!   (verdicts, metrics and bug reports, byte for byte), and
//! * adding or removing dialects never perturbs the seeds of the others.

use crate::fleet::DialectPreset;
use sqlancer_core::driver::{Driver, Pool};
use sqlancer_core::stats::FeatureStats;
use sqlancer_core::supervisor::panic_message;
use sqlancer_core::{
    load_checkpoint, BugPrioritizer, Campaign, CampaignCheckpoint, CampaignConfig,
    CampaignIncident, CampaignMetrics, CampaignReport, IncidentKind, OracleKind, PriorityDecision,
    RobustnessCounters, SupervisorConfig, TraceHandle, TraceSummary, Tracer,
};
use std::cell::RefCell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Which execution path the fleet campaign drives the connections through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPath {
    /// The AST fast path: statements flow into the simulated engines as
    /// typed ASTs, skipping rendering, lexing and parsing, and expressions
    /// run through the closure-compiled evaluator (the default).
    Ast,
    /// The AST fast path with the tree-walking expression evaluator: the
    /// engine re-walks each expression AST per row. This is the
    /// pre-compilation configuration, kept as the baseline arm of the
    /// compiled-vs-tree benchmark and the parity reference.
    AstTreeWalk,
    /// The text path: every statement is rendered to SQL and re-parsed, as
    /// a real wire-protocol backend would require. Used as the baseline arm
    /// in benchmarks and parity tests.
    Text,
}

/// The result of a fleet campaign: per-dialect reports in stable fleet
/// order plus fleet-wide metric totals.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One report per dialect, in the order the presets were given.
    pub reports: Vec<CampaignReport>,
    /// Sum of all per-dialect metrics.
    pub totals: CampaignMetrics,
    /// Sum of all per-dialect robustness counters (retries, watchdog trips,
    /// quarantines, incidents, ...).
    pub robustness: RobustnessCounters,
}

/// Derives the seed for one dialect's campaign from the fleet campaign
/// seed. FNV-1a over the dialect name, mixed with the campaign seed through
/// SplitMix64 finalisation — deterministic, order-independent and stable
/// across runs and thread schedules. The hash primitives live in
/// [`sql_ast::hash`] (shared with the row fingerprints) rather than being
/// re-inlined here.
pub fn derive_dialect_seed(campaign_seed: u64, dialect: &str) -> u64 {
    sql_ast::mix_seed(campaign_seed, dialect)
}

/// Runs one dialect's campaign with its derived seed over the given
/// execution path.
/// Runs one backend's campaign through the Driver/Pool connection layer:
/// per-backend seed derivation, a fixed-size pool with seed-ordered
/// checkout, and the driver's capability report applied to the generator.
/// Reports are byte-identical for any `pool_size`.
pub fn run_one_driver(
    driver: &Arc<dyn Driver>,
    base: &CampaignConfig,
    pool_size: usize,
) -> CampaignReport {
    let mut config = base.clone();
    config.seed = derive_dialect_seed(base.seed, driver.name());
    let mut campaign = Campaign::new(config);
    let mut pool = Pool::new(Arc::clone(driver), pool_size)
        .unwrap_or_else(|err| panic!("pool for {} failed to connect: {err}", driver.name()));
    campaign.run_pooled(&mut pool, &SupervisorConfig::default())
}

fn merge(reports: Vec<CampaignReport>) -> FleetReport {
    let mut totals = CampaignMetrics::default();
    let mut robustness = RobustnessCounters::default();
    for report in &reports {
        totals.merge(&report.metrics);
        robustness.merge(&report.robustness);
    }
    FleetReport {
        reports,
        totals,
        robustness,
    }
}

/// The degraded placeholder report for a dialect whose worker thread died
/// outside the supervisor's reach. The fleet keeps its slot (reports stay
/// index-aligned with the presets) and the loss is visible as a
/// [`IncidentKind::WorkerPanic`] incident instead of a crashed run.
fn worker_panic_report(dialect: &str, detail: String) -> CampaignReport {
    let mut report = CampaignReport {
        dbms_name: dialect.to_string(),
        ..CampaignReport::default()
    };
    report.degraded = true;
    report.robustness.incidents = 1;
    report.robustness.recovered_workers = 1;
    report.incidents.push(CampaignIncident {
        kind: IncidentKind::WorkerPanic,
        database: 0,
        case_index: 0,
        attempt: 0,
        deadline_ticks: 0,
        observed_ticks: 0,
        detail,
    });
    report
}

/// Runs the fleet serially, one campaign per preset, in preset order.
pub fn run_fleet_serial(
    presets: &[DialectPreset],
    base: &CampaignConfig,
    path: ExecutionPath,
) -> FleetReport {
    run_fleet_serial_drivers(&presets_to_drivers(presets, path), base, 1)
}

/// The presets re-exposed through the [`Driver`] interface, in order.
fn presets_to_drivers(presets: &[DialectPreset], path: ExecutionPath) -> Vec<Arc<dyn Driver>> {
    presets.iter().map(|preset| preset.driver(path)).collect()
}

/// Runs a fleet of drivers serially, one pooled campaign per driver, in
/// driver order.
pub fn run_fleet_serial_drivers(
    drivers: &[Arc<dyn Driver>],
    base: &CampaignConfig,
    pool_size: usize,
) -> FleetReport {
    merge(
        drivers
            .iter()
            .map(|driver| run_one_driver(driver, base, pool_size))
            .collect(),
    )
}

/// Runs the fleet sharded across `threads` scoped worker threads.
///
/// Workers claim dialects from a shared counter; each worker instantiates
/// its own simulated DBMS, so no connection state crosses threads. Results
/// are written back by dialect index, making the output — reports, bug
/// lists and totals — byte-identical to [`run_fleet_serial`] with the same
/// seed, regardless of scheduling.
///
/// Worker panics are contained: a dialect whose campaign escapes the
/// supervisor's `catch_unwind` (or whose worker dies before writing its
/// slot) is recorded as a degraded [`worker_panic_report`] instead of
/// taking the whole fleet down, and a poisoned result slot is recovered
/// rather than propagated — the poisoning worker already produced the
/// panic report, so the slot value (set or not) is still trustworthy.
pub fn run_fleet_parallel(
    presets: &[DialectPreset],
    base: &CampaignConfig,
    path: ExecutionPath,
    threads: usize,
) -> FleetReport {
    run_fleet_parallel_drivers(&presets_to_drivers(presets, path), base, 1, threads)
}

/// [`run_fleet_parallel`] over a fleet of drivers: workers claim drivers
/// from a shared counter and each runs a pooled campaign. Output is
/// byte-identical to [`run_fleet_serial_drivers`] with the same seed and
/// pool size, regardless of scheduling.
pub fn run_fleet_parallel_drivers(
    drivers: &[Arc<dyn Driver>],
    base: &CampaignConfig,
    pool_size: usize,
    threads: usize,
) -> FleetReport {
    // The explicit caller-provided count is honoured (oversubscription is
    // harmless and keeps the parallel path exercised even on 1-CPU
    // machines); only bound it by the number of dialects.
    let threads = threads.max(1).min(drivers.len().max(1));
    if threads <= 1 || drivers.len() <= 1 {
        return run_fleet_serial_drivers(drivers, base, pool_size);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CampaignReport>>> =
        drivers.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(driver) = drivers.get(index) else {
                    break;
                };
                let report =
                    catch_unwind(AssertUnwindSafe(|| run_one_driver(driver, base, pool_size)))
                        .unwrap_or_else(|payload| {
                            worker_panic_report(
                                driver.name(),
                                format!("campaign worker panicked: {}", panic_message(&*payload)),
                            )
                        });
                *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
            });
        }
    });
    merge(
        slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // The claiming worker died before writing the slot
                        // (a panic outside the catch above, e.g. in the
                        // slot machinery itself): run the dialect inline.
                        run_one_driver(&drivers[index], base, pool_size)
                    })
            })
            .collect(),
    )
}

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

// ------------------------------------------------ within-dialect sharding ----

/// The result of a partitioned single-dialect campaign: the merged report
/// plus the learned profile folded together in database order.
#[derive(Debug, Clone)]
pub struct PartitionedCampaign {
    /// The merged campaign report (metrics summed, bug reports deduplicated
    /// across shards in database order).
    pub report: CampaignReport,
    /// The validity-feedback profile, merged shard by shard in database
    /// order ([`FeatureStats::merge`]).
    pub profile: FeatureStats,
}

/// Derives the generator seed for one database shard of a partitioned
/// campaign. Like [`derive_dialect_seed`], but over the shard index, so
/// every database's generator stream is independent of how many shards run
/// and on which worker.
pub fn derive_shard_seed(campaign_seed: u64, database_index: usize) -> u64 {
    sql_ast::splitmix64(campaign_seed ^ sql_ast::fnv1a64(&database_index.to_le_bytes()))
}

/// Runs one dialect's campaign **sharded by database** across `threads`
/// scoped workers and merges the results in database order.
///
/// Each of the configured `databases` becomes an independent
/// single-database campaign: its generator is seeded by
/// [`derive_shard_seed`] and starts from the base configuration (no state
/// chains from earlier databases, which is what makes the shards
/// embarrassingly parallel — the cheap `Engine::clone`/setup path keeps
/// per-shard instantiation negligible). Workers claim shards from a shared
/// counter; results are merged **in database order**:
///
/// * metrics sum; the validity series concatenates shard series in order;
/// * bug reports are re-prioritized by a merge-time [`BugPrioritizer`]
///   walking the shards in order, so duplicates across shards are dropped
///   exactly as a serial pass over the same stream would drop them (the
///   `prioritized + deduplicated = detected` invariant holds);
/// * learned profiles fold with [`FeatureStats::merge`].
///
/// The output is byte-identical for any `threads`, including 1 — the
/// serial reference is this same function with one worker.
pub fn run_campaign_partitioned(
    preset: &DialectPreset,
    base: &CampaignConfig,
    path: ExecutionPath,
    threads: usize,
) -> PartitionedCampaign {
    run_campaign_partitioned_supervised(preset, base, path, threads, &SupervisorConfig::default())
}

/// The per-shard checkpoint file for a partitioned campaign: the campaign's
/// checkpoint path with a `.shard<index>` suffix appended, so shards never
/// clobber each other's resume state.
pub fn shard_checkpoint_path(base: &Path, index: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{index}"));
    PathBuf::from(name)
}

/// Loads the checkpoint a supervised campaign should resume from, if any:
/// the supervision config names a checkpoint path, the file loads, and the
/// recorded seed matches the campaign seed. A stale or foreign checkpoint
/// (different seed) is ignored rather than trusted — the shard simply runs
/// fresh and overwrites it at the next cadence tick.
fn resumable_checkpoint(supervision: &SupervisorConfig, seed: u64) -> Option<CampaignCheckpoint> {
    let path = supervision.checkpoint_path.as_deref()?;
    let checkpoint = load_checkpoint(path).ok()?;
    (checkpoint.config_seed == seed).then_some(checkpoint)
}

/// [`run_campaign_partitioned`] with explicit supervision: every shard runs
/// under the watchdog/retry/quarantine supervisor, shard checkpoints write
/// to `<checkpoint_path>.shard<index>`, and a shard whose checkpoint file
/// already exists (same seed) **resumes** from it instead of starting over.
/// Killing the process mid-campaign and re-invoking with the same
/// configuration therefore converges to the same merged report as an
/// uninterrupted run.
///
/// A shard worker that panics outside the supervisor's reach is recorded as
/// a degraded [`worker_panic_report`] shard; poisoned shard slots are
/// recovered, not propagated.
pub fn run_campaign_partitioned_supervised(
    preset: &DialectPreset,
    base: &CampaignConfig,
    path: ExecutionPath,
    threads: usize,
    supervision: &SupervisorConfig,
) -> PartitionedCampaign {
    run_campaign_partitioned_pooled(&preset.driver(path), base, threads, 1, supervision)
}

/// [`run_campaign_partitioned_supervised`] over a driver: every shard runs
/// a pooled campaign (`pool_size` connections, seed-ordered checkout) with
/// the driver's capability report applied. The merged report is
/// byte-identical for any shard count *and* any pool size.
pub fn run_campaign_partitioned_pooled(
    driver: &Arc<dyn Driver>,
    base: &CampaignConfig,
    threads: usize,
    pool_size: usize,
    supervision: &SupervisorConfig,
) -> PartitionedCampaign {
    let run_shard_guarded = |index: usize| -> (CampaignReport, FeatureStats) {
        catch_unwind(AssertUnwindSafe(|| {
            run_one_shard(driver, base, pool_size, supervision, index, None)
        }))
        .unwrap_or_else(|payload| {
            (
                shard_panic_report(driver.name(), &*payload),
                FeatureStats::new(),
            )
        })
    };
    let results = run_shards_scheduled(base.databases, threads, &run_shard_guarded);
    merge_shards(driver.name(), results)
}

/// [`run_campaign_partitioned_pooled`] with per-shard trace collection:
/// every shard runs with its own [`Tracer`] (trace sinks are
/// single-threaded by design — `Rc`, not `Arc`) and the shard summaries
/// fold into one [`TraceSummary`] by summation. Because shard summaries
/// merge commutatively and per-case tick deltas are sampled inside the
/// case (after pool checkout and re-sync), the merged summary — and its
/// [`sqlancer_core::render_trace_summary`] rendering — is byte-identical
/// for any `threads` and any `pool_size`.
///
/// A shard whose worker panics outside the supervisor's reach contributes
/// a degraded [`worker_panic_report`] and an empty trace summary.
pub fn run_campaign_partitioned_traced(
    driver: &Arc<dyn Driver>,
    base: &CampaignConfig,
    threads: usize,
    pool_size: usize,
    supervision: &SupervisorConfig,
) -> (PartitionedCampaign, TraceSummary) {
    let run_shard_guarded = |index: usize| -> (CampaignReport, FeatureStats, TraceSummary) {
        catch_unwind(AssertUnwindSafe(|| {
            let tracer = Rc::new(RefCell::new(Tracer::new()));
            let handle: TraceHandle = tracer.clone();
            let (report, stats) =
                run_one_shard(driver, base, pool_size, supervision, index, Some(handle));
            let summary = tracer.borrow().summary().clone();
            (report, stats, summary)
        }))
        .unwrap_or_else(|payload| {
            (
                shard_panic_report(driver.name(), &*payload),
                FeatureStats::new(),
                TraceSummary::new(),
            )
        })
    };
    let results = run_shards_scheduled(base.databases, threads, &run_shard_guarded);
    let mut summary = TraceSummary::new();
    let mut shards = Vec::with_capacity(results.len());
    for (report, stats, shard_summary) in results {
        summary.merge(&shard_summary);
        shards.push((report, stats));
    }
    (merge_shards(driver.name(), shards), summary)
}

/// One database shard of a partitioned campaign: single-database config
/// with the shard-derived seed, per-shard checkpoint path, pooled
/// connections, checkpoint resume, and an optional trace sink.
fn run_one_shard(
    driver: &Arc<dyn Driver>,
    base: &CampaignConfig,
    pool_size: usize,
    supervision: &SupervisorConfig,
    index: usize,
    trace: Option<TraceHandle>,
) -> (CampaignReport, FeatureStats) {
    let mut config = base.clone();
    config.databases = 1;
    config.seed = derive_shard_seed(base.seed, index);
    let seed = config.seed;
    let mut shard_sup = supervision.clone();
    if let Some(base_path) = &supervision.checkpoint_path {
        shard_sup.checkpoint_path = Some(shard_checkpoint_path(base_path, index));
    }
    let mut campaign = Campaign::new(config);
    campaign.set_trace(trace);
    let mut pool = Pool::new(Arc::clone(driver), pool_size)
        .unwrap_or_else(|err| panic!("pool for {} failed to connect: {err}", driver.name()));
    let report = match resumable_checkpoint(&shard_sup, seed) {
        Some(checkpoint) => campaign.resume_pooled(&mut pool, &shard_sup, checkpoint),
        None => campaign.run_pooled(&mut pool, &shard_sup),
    };
    (report, campaign.generator.stats.clone())
}

/// The degraded report for a shard worker that panicked outside the
/// supervisor's reach.
fn shard_panic_report(dialect: &str, payload: &(dyn std::any::Any + Send)) -> CampaignReport {
    worker_panic_report(
        dialect,
        format!("shard worker panicked: {}", panic_message(payload)),
    )
}

/// Runs `shards` shard jobs across up to `threads` scoped workers claiming
/// indices from a shared counter, writing results back by shard index.
/// Poisoned result slots are recovered, not propagated, and a slot whose
/// claiming worker died before writing is re-run inline.
fn run_shards_scheduled<T: Send>(
    shards: usize,
    threads: usize,
    run_shard_guarded: &(impl Fn(usize) -> T + Sync),
) -> Vec<T> {
    let threads = threads.max(1).min(shards.max(1));
    if threads <= 1 || shards <= 1 {
        return (0..shards).map(run_shard_guarded).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= shards {
                    break;
                }
                let result = run_shard_guarded(index);
                *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| run_shard_guarded(index))
        })
        .collect()
}

/// The injected infrastructure fault ids whose incidents appear in a
/// report, in catalog order. The ground-truth check for fault-storm
/// campaigns: arm a fault kind, run, and its id must appear here; disarm
/// it (bisection) and it must vanish.
pub fn observed_infra_kinds(report: &CampaignReport) -> Vec<&'static str> {
    [
        "infra_crash",
        "infra_hang",
        "infra_drop",
        "infra_garble",
        "infra_probe",
        "infra_flap",
        "infra_capability_lie",
    ]
    .into_iter()
    .filter(|id| report.incidents.iter().any(|i| i.detail.contains(id)))
    .collect()
}

/// Folds per-database shard results together in database order.
fn merge_shards(dialect: &str, shards: Vec<(CampaignReport, FeatureStats)>) -> PartitionedCampaign {
    let mut merged = CampaignReport {
        dbms_name: dialect.to_string(),
        ..CampaignReport::default()
    };
    let mut profile = FeatureStats::new();
    let mut prioritizer = BugPrioritizer::new();
    for (shard_index, (shard, stats)) in shards.into_iter().enumerate() {
        merged.metrics.merge(&shard.metrics);
        merged.validity_series.extend(shard.validity_series);
        merged.robustness.merge(&shard.robustness);
        merged.coverage.merge(&shard.coverage);
        merged.degraded |= shard.degraded;
        // Each shard ran as database 0 of its own single-database campaign;
        // restore the fleet-level view by stamping the shard index back
        // into its incidents.
        merged
            .incidents
            .extend(shard.incidents.into_iter().map(|mut incident| {
                incident.database = shard_index;
                incident
            }));
        // Each shard pushed one replayable case per kept report, in the
        // same order; walk them with per-kind cursors so a merge-time
        // duplicate drops the report *and* its case together.
        let mut cases = shard.prioritized_cases.into_iter();
        let mut txn_cases = shard.txn_cases.into_iter();
        let mut schedule_cases = shard.schedule_cases.into_iter();
        for report in shard.reports {
            let decision = prioritizer.classify(&report.features);
            match report.oracle {
                OracleKind::Tlp | OracleKind::NoRec => {
                    let case = cases.next().expect("one case per single-query report");
                    if decision == PriorityDecision::New {
                        merged.prioritized_cases.push(case);
                        merged.reports.push(report);
                    }
                }
                OracleKind::Rollback => {
                    let case = txn_cases.next().expect("one case per rollback report");
                    if decision == PriorityDecision::New {
                        merged.txn_cases.push(case);
                        merged.reports.push(report);
                    }
                }
                OracleKind::Isolation => {
                    let case = schedule_cases
                        .next()
                        .expect("one case per isolation report");
                    if decision == PriorityDecision::New {
                        merged.schedule_cases.push(case);
                        merged.reports.push(report);
                    }
                }
            }
        }
        profile.merge(&stats);
    }
    // Cross-shard deduplication recomputes the prioritization tallies; the
    // detected count is untouched, preserving the campaign invariant.
    merged.metrics.prioritized_bugs = merged.reports.len() as u64;
    merged.metrics.deduplicated_bugs = merged
        .metrics
        .detected_bug_cases
        .saturating_sub(merged.metrics.prioritized_bugs);
    PartitionedCampaign {
        report: merged,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::fleet;
    use sqlancer_core::OracleKind;

    fn small_config() -> CampaignConfig {
        CampaignConfig::builder()
            .seed(0xF1EE7)
            .databases(1)
            .ddl_per_database(6)
            .queries_per_database(12)
            .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
            .reduce_bugs(false)
            .build()
    }

    #[test]
    fn derived_seeds_differ_per_dialect_and_are_stable() {
        let a = derive_dialect_seed(1, "sqlite");
        let b = derive_dialect_seed(1, "mysql");
        assert_ne!(a, b);
        assert_eq!(a, derive_dialect_seed(1, "sqlite"));
        assert_ne!(a, derive_dialect_seed(2, "sqlite"));
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let presets: Vec<_> = fleet().into_iter().take(4).collect();
        let config = small_config();
        let serial = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
        let parallel = run_fleet_parallel(&presets, &config, ExecutionPath::Ast, 4);
        assert_eq!(serial.reports.len(), parallel.reports.len());
        for (s, p) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(s.dbms_name, p.dbms_name);
            assert_eq!(s.metrics, p.metrics);
            assert_eq!(s.reports, p.reports);
            assert_eq!(s.validity_series, p.validity_series);
        }
        assert_eq!(serial.totals, parallel.totals);
    }

    #[test]
    fn partitioned_run_is_identical_for_any_thread_count() {
        let preset = crate::preset_by_name("mariadb").unwrap();
        let mut config = small_config();
        config.databases = 4;
        config.oracles = vec![OracleKind::Tlp, OracleKind::Isolation];
        let serial = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 1);
        let parallel = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 4);
        assert_eq!(serial.report.dbms_name, parallel.report.dbms_name);
        assert_eq!(serial.report.metrics, parallel.report.metrics);
        assert_eq!(serial.report.reports, parallel.report.reports);
        assert_eq!(
            serial.report.validity_series,
            parallel.report.validity_series
        );
        assert_eq!(serial.report.schedule_cases, parallel.report.schedule_cases);
        let serial_profile: Vec<_> = serial
            .profile
            .iter_query()
            .map(|(f, c)| (f.clone(), *c))
            .collect();
        let parallel_profile: Vec<_> = parallel
            .profile
            .iter_query()
            .map(|(f, c)| (f.clone(), *c))
            .collect();
        assert_eq!(serial_profile, parallel_profile);
        // The invariant the merge-time prioritizer must preserve.
        assert_eq!(
            serial.report.metrics.prioritized_bugs + serial.report.metrics.deduplicated_bugs,
            serial.report.metrics.detected_bug_cases
        );
    }

    #[test]
    fn shard_seeds_are_stable_and_distinct() {
        assert_eq!(derive_shard_seed(7, 0), derive_shard_seed(7, 0));
        assert_ne!(derive_shard_seed(7, 0), derive_shard_seed(7, 1));
        assert_ne!(derive_shard_seed(7, 0), derive_shard_seed(8, 0));
    }

    #[test]
    fn totals_accumulate_across_dialects() {
        let presets: Vec<_> = fleet().into_iter().take(2).collect();
        let report = run_fleet_serial(&presets, &small_config(), ExecutionPath::Ast);
        let sum: u64 = report.reports.iter().map(|r| r.metrics.test_cases).sum();
        assert_eq!(report.totals.test_cases, sum);
        assert!(report.totals.test_cases > 0);
    }
}
