//! The fleet campaign runner: one campaign per dialect, serial or sharded
//! across threads.
//!
//! The paper's platform tests 18 DBMSs; at fleet scale the campaigns are
//! embarrassingly parallel — each dialect gets its own connection, its own
//! adaptive generator and its own prioritizer. The runner derives a
//! deterministic per-dialect seed from the campaign seed, so
//!
//! * serial and parallel runs produce **identical** per-dialect reports
//!   (verdicts, metrics and bug reports, byte for byte), and
//! * adding or removing dialects never perturbs the seeds of the others.

use crate::fleet::DialectPreset;
use sqlancer_core::{
    Campaign, CampaignConfig, CampaignMetrics, CampaignReport, TextOnlyConnection,
};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which execution path the fleet campaign drives the connections through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPath {
    /// The AST fast path: statements flow into the simulated engines as
    /// typed ASTs, skipping rendering, lexing and parsing, and expressions
    /// run through the closure-compiled evaluator (the default).
    Ast,
    /// The AST fast path with the tree-walking expression evaluator: the
    /// engine re-walks each expression AST per row. This is the
    /// pre-compilation configuration, kept as the baseline arm of the
    /// compiled-vs-tree benchmark and the parity reference.
    AstTreeWalk,
    /// The text path: every statement is rendered to SQL and re-parsed, as
    /// a real wire-protocol backend would require. Used as the baseline arm
    /// in benchmarks and parity tests.
    Text,
}

/// The result of a fleet campaign: per-dialect reports in stable fleet
/// order plus fleet-wide metric totals.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One report per dialect, in the order the presets were given.
    pub reports: Vec<CampaignReport>,
    /// Sum of all per-dialect metrics.
    pub totals: CampaignMetrics,
}

/// Derives the seed for one dialect's campaign from the fleet campaign
/// seed. FNV-1a over the dialect name, mixed with the campaign seed through
/// SplitMix64 finalisation — deterministic, order-independent and stable
/// across runs and thread schedules. The hash primitives live in
/// [`sql_ast::hash`] (shared with the row fingerprints) rather than being
/// re-inlined here.
pub fn derive_dialect_seed(campaign_seed: u64, dialect: &str) -> u64 {
    sql_ast::mix_seed(campaign_seed, dialect)
}

/// Runs one dialect's campaign with its derived seed over the given
/// execution path.
fn run_one(preset: &DialectPreset, base: &CampaignConfig, path: ExecutionPath) -> CampaignReport {
    let mut config = base.clone();
    config.seed = derive_dialect_seed(base.seed, &preset.profile.name);
    let mut campaign = Campaign::new(config);
    match path {
        ExecutionPath::Ast => campaign.run(&mut preset.instantiate()),
        ExecutionPath::AstTreeWalk => {
            campaign.run(&mut preset.instantiate_with_eval(sql_engine::EvalStrategy::TreeWalk))
        }
        ExecutionPath::Text => campaign.run(&mut TextOnlyConnection::new(preset.instantiate())),
    }
}

fn merge(reports: Vec<CampaignReport>) -> FleetReport {
    let mut totals = CampaignMetrics::default();
    for report in &reports {
        totals.merge(&report.metrics);
    }
    FleetReport { reports, totals }
}

/// Runs the fleet serially, one campaign per preset, in preset order.
pub fn run_fleet_serial(
    presets: &[DialectPreset],
    base: &CampaignConfig,
    path: ExecutionPath,
) -> FleetReport {
    merge(
        presets
            .iter()
            .map(|preset| run_one(preset, base, path))
            .collect(),
    )
}

/// Runs the fleet sharded across `threads` scoped worker threads.
///
/// Workers claim dialects from a shared counter; each worker instantiates
/// its own simulated DBMS, so no connection state crosses threads. Results
/// are written back by dialect index, making the output — reports, bug
/// lists and totals — byte-identical to [`run_fleet_serial`] with the same
/// seed, regardless of scheduling.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_fleet_parallel(
    presets: &[DialectPreset],
    base: &CampaignConfig,
    path: ExecutionPath,
    threads: usize,
) -> FleetReport {
    // The explicit caller-provided count is honoured (oversubscription is
    // harmless and keeps the parallel path exercised even on 1-CPU
    // machines); only bound it by the number of dialects.
    let threads = threads.max(1).min(presets.len().max(1));
    if threads <= 1 || presets.len() <= 1 {
        return run_fleet_serial(presets, base, path);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CampaignReport>>> =
        presets.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(preset) = presets.get(index) else {
                    break;
                };
                let report = run_one(preset, base, path);
                *slots[index].lock().expect("result slot poisoned") = Some(report);
            });
        }
    });
    merge(
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker finished every claimed dialect")
            })
            .collect(),
    )
}

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::fleet;
    use sqlancer_core::OracleKind;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 0xF1EE7,
            databases: 1,
            ddl_per_database: 6,
            queries_per_database: 12,
            oracles: vec![OracleKind::Tlp, OracleKind::NoRec],
            reduce_bugs: false,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn derived_seeds_differ_per_dialect_and_are_stable() {
        let a = derive_dialect_seed(1, "sqlite");
        let b = derive_dialect_seed(1, "mysql");
        assert_ne!(a, b);
        assert_eq!(a, derive_dialect_seed(1, "sqlite"));
        assert_ne!(a, derive_dialect_seed(2, "sqlite"));
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let presets: Vec<_> = fleet().into_iter().take(4).collect();
        let config = small_config();
        let serial = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
        let parallel = run_fleet_parallel(&presets, &config, ExecutionPath::Ast, 4);
        assert_eq!(serial.reports.len(), parallel.reports.len());
        for (s, p) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(s.dbms_name, p.dbms_name);
            assert_eq!(s.metrics, p.metrics);
            assert_eq!(s.reports, p.reports);
            assert_eq!(s.validity_series, p.validity_series);
        }
        assert_eq!(serial.totals, parallel.totals);
    }

    #[test]
    fn totals_accumulate_across_dialects() {
        let presets: Vec<_> = fleet().into_iter().take(2).collect();
        let report = run_fleet_serial(&presets, &small_config(), ExecutionPath::Ast);
        let sum: u64 = report.reports.iter().map(|r| r.metrics.test_cases).sum();
        assert_eq!(report.totals.test_cases, sum);
        assert!(report.totals.test_cases > 0);
    }
}
