//! The simulated DBMS fleet: 18 dialect presets mirroring the systems in
//! Table 2 of the paper.
//!
//! Each preset combines a typing discipline, an unsupported-feature list and
//! a set of injected bugs. The presets are *modeled on* the real systems —
//! e.g. the `sqlite` preset is dynamically typed and accepts almost
//! everything, the `postgres`-like presets are strictly typed, `cratedb`
//! rejects `CREATE INDEX` and needs `REFRESH TABLE`, `duckdb` has a handful
//! of optimizer bugs — but they are simulations, not the systems themselves
//! (see DESIGN.md §1 for the substitution rationale).

use std::sync::Arc;

use crate::dbms::SimulatedDbms;
use crate::faulty::{FaultyConfig, FaultyConnection};
use crate::profile::DialectProfile;
use crate::runner::ExecutionPath;
use sql_engine::{EvalStrategy, TypingMode};
use sqlancer_core::driver::{Capability, Driver};

/// A named preset of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectPreset {
    /// The dialect profile.
    pub profile: DialectProfile,
    /// Names of the injected engine faults.
    pub faults: Vec<&'static str>,
    /// Injected *infrastructure* faults (crashes, hangs, drops, garbled
    /// results), layered as a [`FaultyConnection`] decorator when set.
    /// `None` for the stock fleet — robustness experiments arm them with
    /// [`DialectPreset::with_infra_faults`].
    pub infra: Option<FaultyConfig>,
}

impl DialectPreset {
    /// Instantiates a fresh simulated DBMS from the preset.
    ///
    /// Note this is the bare engine, without the infrastructure-fault
    /// decorator — ground-truth bisection replays cases on it directly.
    /// The campaign runners go through [`DialectPreset::instantiate_for_path`],
    /// which layers the decorator when [`DialectPreset::infra`] is set.
    pub fn instantiate(&self) -> SimulatedDbms {
        SimulatedDbms::new(self.profile.clone(), self.faults.clone())
    }

    /// Instantiates a fresh simulated DBMS with an explicit expression
    /// evaluation strategy (the tree walker is the benchmark baseline and
    /// parity reference arm).
    pub fn instantiate_with_eval(&self, eval: EvalStrategy) -> SimulatedDbms {
        SimulatedDbms::with_eval(self.profile.clone(), self.faults.clone(), eval)
    }

    /// This preset with the given infrastructure faults armed: connections
    /// built by [`DialectPreset::instantiate_for_path`] come wrapped in a
    /// [`FaultyConnection`].
    pub fn with_infra_faults(mut self, config: FaultyConfig) -> DialectPreset {
        self.infra = Some(config);
        self
    }

    /// This preset with every injected *engine* fault removed (the
    /// logic-bug-free variant used by the fault-storm CI gate, where any
    /// reported logic bug is by construction a false positive).
    pub fn without_engine_faults(mut self) -> DialectPreset {
        self.faults.clear();
        self
    }

    /// Instantiates a fresh connection configured for the given execution
    /// path — the shared setup of the serial, fleet-parallel and
    /// within-dialect partitioned campaign runners. When the preset arms
    /// infrastructure faults, the connection is wrapped in a
    /// [`FaultyConnection`] (outermost, so faults hit the text and AST
    /// paths alike).
    pub fn instantiate_for_path(
        &self,
        path: crate::runner::ExecutionPath,
    ) -> Box<dyn sqlancer_core::DbmsConnection> {
        use crate::runner::ExecutionPath;
        let conn: Box<dyn sqlancer_core::DbmsConnection> = match path {
            ExecutionPath::Ast => Box::new(self.instantiate()),
            ExecutionPath::AstTreeWalk => {
                Box::new(self.instantiate_with_eval(EvalStrategy::TreeWalk))
            }
            ExecutionPath::Text => {
                Box::new(sqlancer_core::TextOnlyConnection::new(self.instantiate()))
            }
        };
        match &self.infra {
            Some(config) => Box::new(FaultyConnection::new(conn, config.clone())),
            None => conn,
        }
    }

    /// The [`Capability`] report of this preset under the given execution
    /// path, derived from the dialect profile: what were hardcoded
    /// dialect-name facts (cratedb/risingwave reject transactions, vitess
    /// rejects savepoints, CrateDB needs `REFRESH TABLE`) now flow through
    /// capability fields. The AST fast path is a capability of the
    /// simulated fleet, not an assumption — the `Text` path reports a
    /// text-only wire contract for statements.
    pub fn capability_for_path(&self, path: ExecutionPath) -> Capability {
        let supports_all = |names: &[&str]| names.iter().all(|name| self.profile.supports(name));
        let transactions = supports_all(&["STMT_BEGIN", "STMT_COMMIT", "STMT_ROLLBACK"]);
        Capability::default()
            .with_transactions(transactions)
            .with_savepoints(
                transactions
                    && supports_all(&[
                        "STMT_SAVEPOINT",
                        "STMT_ROLLBACK_TO",
                        "STMT_RELEASE_SAVEPOINT",
                    ]),
            )
            .with_ast_statements(path != ExecutionPath::Text)
            .with_requires_refresh(self.profile.requires_refresh)
            .with_requires_commit(self.profile.requires_commit)
    }

    /// Re-exposes the preset through the platform's [`Driver`] interface:
    /// a factory for connections built by
    /// [`DialectPreset::instantiate_for_path`] (infrastructure-fault
    /// decorator included, so `FaultyConnection`s wrap pooled connections
    /// individually), plus the capability report.
    pub fn driver(&self, path: ExecutionPath) -> Arc<dyn Driver> {
        Arc::new(SimDriver {
            preset: self.clone(),
            path,
        })
    }
}

/// A [`DialectPreset`] behind the platform's [`Driver`] interface (see
/// [`DialectPreset::driver`]).
pub struct SimDriver {
    preset: DialectPreset,
    path: ExecutionPath,
}

impl Driver for SimDriver {
    fn name(&self) -> &str {
        &self.preset.profile.name
    }

    fn capability(&self) -> Capability {
        self.preset.capability_for_path(self.path)
    }

    fn connect(&self) -> Result<Box<dyn sqlancer_core::DbmsConnection>, String> {
        Ok(self.preset.instantiate_for_path(self.path))
    }
}

/// The whole fleet as drivers, in fleet order — the fleet runners'
/// native input.
pub fn fleet_drivers(path: ExecutionPath) -> Vec<Arc<dyn Driver>> {
    fleet().iter().map(|preset| preset.driver(path)).collect()
}

fn preset(
    name: &str,
    typing: TypingMode,
    unsupported: &[&str],
    faults: &[&'static str],
    requires_refresh: bool,
) -> DialectPreset {
    let mut profile = DialectProfile::permissive(name, typing).without(unsupported);
    profile.requires_refresh = requires_refresh;
    DialectPreset {
        profile,
        faults: faults.to_vec(),
        infra: None,
    }
}

/// The 18-dialect fleet, in the alphabetical order of Table 2.
pub fn fleet() -> Vec<DialectPreset> {
    vec![
        preset(
            "cedardb",
            TypingMode::Strict,
            &[
                "OP_NULLSAFE_EQ",
                "FN_IIF",
                "FN_IF",
                "JOIN_NATURAL",
                "STMT_ANALYZE",
            ],
            &["bad_case_folding", "crash_on_deep_expressions"],
            false,
        ),
        preset(
            "cratedb",
            TypingMode::Strict,
            // CrateDB has no multi-statement transactions: every
            // transaction-control statement is rejected, which is what the
            // adaptive generator's `transactions` feature learns.
            &[
                "STMT_CREATE_INDEX",
                "STMT_BEGIN",
                "STMT_ROLLBACK",
                "STMT_SAVEPOINT",
                "STMT_ROLLBACK_TO",
                "STMT_RELEASE_SAVEPOINT",
                "OP_NULLSAFE_EQ",
                "FN_IIF",
                "FN_IF",
                "FN_TOTAL",
                "JOIN_NATURAL",
                "KW_OR_IGNORE",
            ],
            &[
                "bad_not_elimination",
                "bad_predicate_pushdown",
                "bad_in_list_rewrite",
                "bad_sum_empty_group",
                "bad_view_predicate_drop",
                "bad_text_coercion_sign",
                "crash_on_many_joins",
            ],
            true,
        ),
        preset(
            "cubrid",
            TypingMode::Strict,
            &[
                "JOIN_FULL",
                "FN_CONCAT_WS",
                "OP_IS_DISTINCT",
                "OP_IS_NOT_DISTINCT",
            ],
            &["bad_between_rewrite"],
            false,
        ),
        preset(
            "dolt",
            TypingMode::Dynamic,
            &["JOIN_FULL", "OP_BITXOR", "FN_STRPOS", "STMT_ANALYZE"],
            &[
                "bad_join_flattening",
                "bad_group_by_collation",
                "bad_like_underscore",
                "bad_count_nulls",
                "txn_lost_rollback",
                "crash_on_deep_expressions",
                "crash_on_many_joins",
            ],
            false,
        ),
        preset(
            "duckdb",
            TypingMode::Dynamic,
            &[
                "OP_NULLSAFE_EQ",
                "FN_IF",
                "FN_IIF",
                "FN_TOTAL",
                "FN_SPACE",
                "FN_INSTR",
                "KW_OR_IGNORE",
                "KW_PARTIAL_INDEX",
                "JOIN_NATURAL",
            ],
            &[
                "bad_range_negation",
                "bad_limit_pushdown",
                "bad_stale_count_statistics",
                "bad_integer_division",
            ],
            false,
        ),
        preset(
            "firebird",
            TypingMode::Strict,
            &[
                "OP_NULLSAFE_EQ",
                "OP_BITXOR",
                "FN_GREATEST",
                "FN_LEAST",
                "KW_PARTIAL_INDEX",
            ],
            &[
                "bad_notnull_isnull_folding",
                "bad_having_pushdown",
                "txn_savepoint_collapse",
                "crash_on_deep_expressions",
            ],
            false,
        ),
        preset(
            "h2",
            TypingMode::Strict,
            &["OP_NULLSAFE_EQ", "FN_STRPOS"],
            &["bad_nullif_null_handling"],
            false,
        ),
        preset(
            "mariadb",
            TypingMode::Dynamic,
            &[
                "JOIN_FULL",
                "OP_IS_DISTINCT",
                "OP_IS_NOT_DISTINCT",
                "FN_GREATEST",
            ],
            // Isolation fault: COMMIT skips first-committer-wins
            // validation (lost update).
            &["bad_collation_comparison", "iso_lost_update"],
            false,
        ),
        preset(
            "monetdb",
            TypingMode::Strict,
            &[
                "OP_NULLSAFE_EQ",
                "FN_IIF",
                "KW_PARTIAL_INDEX",
                "KW_OR_IGNORE",
            ],
            &[
                "bad_predicate_pushdown",
                "bad_distinct_elimination",
                "bad_unique_index_shortcut",
                "bad_case_folding",
                "bad_sum_empty_group",
                "bad_having_pushdown",
                "txn_phantom_commit",
                "crash_on_many_joins",
            ],
            false,
        ),
        preset(
            "mysql",
            TypingMode::Dynamic,
            &[
                "JOIN_FULL",
                "OP_IS_DISTINCT",
                "OP_IS_NOT_DISTINCT",
                "FN_TOTAL",
            ],
            // Isolation fault: the begin-time snapshot leaks other
            // sessions' uncommitted writes (dirty read).
            &["bad_bitwise_inversion", "iso_dirty_read"],
            false,
        ),
        preset(
            "oracle",
            TypingMode::Strict,
            &[
                "TYPE_BOOLEAN",
                "OP_NULLSAFE_EQ",
                "FN_IF",
                "KW_OR_IGNORE",
                "CLAUSE_LIMIT",
            ],
            &["bad_constant_folding_text"],
            false,
        ),
        preset(
            "percona",
            TypingMode::Dynamic,
            &["JOIN_FULL", "OP_IS_DISTINCT", "OP_IS_NOT_DISTINCT"],
            &["bad_bitwise_inversion", "bad_collation_comparison"],
            false,
        ),
        preset(
            "risingwave",
            TypingMode::Strict,
            // Streaming system: no interactive transactions.
            &[
                "STMT_CREATE_INDEX",
                "STMT_BEGIN",
                "STMT_ROLLBACK",
                "STMT_SAVEPOINT",
                "STMT_ROLLBACK_TO",
                "STMT_RELEASE_SAVEPOINT",
                "OP_NULLSAFE_EQ",
                "STMT_ANALYZE",
                "FN_IIF",
            ],
            &[
                "bad_predicate_pushdown",
                "bad_sum_empty_group",
                "crash_on_many_joins",
            ],
            true,
        ),
        preset(
            "sqlite",
            TypingMode::Dynamic,
            // SQLite's dialect is permissive but still misses a number of the
            // generator's features (no null-safe equality, no RIGHT/FULL JOIN
            // before 3.39, few padding/char functions, no GREATEST/LEAST).
            &[
                "OP_NULLSAFE_EQ",
                "JOIN_RIGHT",
                "JOIN_FULL",
                "FN_LPAD",
                "FN_RPAD",
                "FN_REPEAT",
                "FN_CHR",
                "FN_SPACE",
                "FN_GREATEST",
                "FN_LEAST",
                "FN_STRPOS",
                "FN_CONCAT_WS",
                "FN_TO_CHAR",
                "FN_IF",
            ],
            &["bad_replace_type_affinity", "bad_join_flattening"],
            false,
        ),
        preset(
            "tidb",
            TypingMode::Dynamic,
            &["JOIN_FULL", "OP_IS_DISTINCT", "OP_IS_NOT_DISTINCT"],
            // Isolation fault: in-transaction reads of unwritten tables
            // see the latest committed state (non-repeatable read).
            &[
                "bad_bitwise_inversion",
                "bad_index_lookup_coercion",
                "iso_nonrepeatable_read",
            ],
            false,
        ),
        preset(
            "umbra",
            TypingMode::Strict,
            &["OP_NULLSAFE_EQ", "FN_IF", "FN_TOTAL", "JOIN_NATURAL"],
            &[
                "bad_not_elimination",
                "bad_range_negation",
                "bad_in_list_rewrite",
                "bad_between_rewrite",
                "bad_limit_pushdown",
                "bad_distinct_elimination",
                "bad_nullif_null_handling",
                "bad_text_coercion_sign",
                "bad_count_nulls",
                "crash_on_deep_expressions",
            ],
            false,
        ),
        preset(
            "virtuoso",
            TypingMode::Dynamic,
            &["JOIN_FULL", "FN_CONCAT_WS", "FN_STRPOS", "KW_PARTIAL_INDEX"],
            &[
                "bad_view_predicate_drop",
                "bad_group_by_collation",
                "crash_on_deep_expressions",
            ],
            false,
        ),
        preset(
            "vitess",
            TypingMode::Dynamic,
            // Sharded MySQL: transactions work, savepoints do not.
            &[
                "JOIN_FULL",
                "OP_IS_DISTINCT",
                "OP_IS_NOT_DISTINCT",
                "STMT_CREATE_VIEW",
                "STMT_SAVEPOINT",
                "STMT_ROLLBACK_TO",
                "STMT_RELEASE_SAVEPOINT",
            ],
            &["bad_index_lookup_coercion"],
            false,
        ),
    ]
}

/// Looks a preset up by name.
pub fn preset_by_name(name: &str) -> Option<DialectPreset> {
    fleet()
        .into_iter()
        .find(|p| p.profile.name.eq_ignore_ascii_case(name))
}

/// Names of the three dialects used in the coverage / validity experiments
/// (Tables 3 and 4 of the paper): SQLite-, PostgreSQL- and DuckDB-like.
pub fn validity_experiment_dialects() -> Vec<DialectPreset> {
    // The paper measures validity on SQLite and PostgreSQL; the fleet has no
    // dialect literally named "postgresql", its closest strictly-typed
    // stand-in is `umbra` (a textbook strict dialect). We also include
    // DuckDB per Table 4.
    vec![
        preset_by_name("sqlite").expect("sqlite preset"),
        preset_by_name("umbra").expect("umbra preset"),
        preset_by_name("duckdb").expect("duckdb preset"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlancer_core::DbmsConnection;
    use std::collections::BTreeSet;

    #[test]
    fn fleet_matches_paper_scale() {
        let fleet = fleet();
        assert_eq!(fleet.len(), 18);
        let names: BTreeSet<_> = fleet.iter().map(|p| p.profile.name.clone()).collect();
        assert_eq!(names.len(), 18);
        // Every preset instantiates and accepts a trivial statement.
        for preset in &fleet {
            let mut dbms = preset.instantiate();
            assert!(
                dbms.execute("CREATE TABLE smoke (c0 INTEGER)").is_success(),
                "{} rejects trivial DDL",
                preset.profile.name
            );
        }
    }

    #[test]
    fn cratedb_preset_mirrors_paper_quirks() {
        let preset = preset_by_name("cratedb").unwrap();
        assert!(preset.profile.requires_refresh);
        assert!(!preset.profile.supports("STMT_CREATE_INDEX"));
        let mut dbms = preset.instantiate();
        dbms.execute("CREATE TABLE t0 (c0 INTEGER)");
        assert!(!dbms.execute("CREATE INDEX i0 ON t0(c0)").is_success());
    }

    #[test]
    fn most_presets_inject_at_least_one_logic_bug() {
        let with_bugs = fleet().iter().filter(|p| !p.faults.is_empty()).count();
        assert_eq!(with_bugs, 18, "every dialect carries injected bugs");
    }

    #[test]
    fn dialects_differ_in_supported_features() {
        let sqlite = preset_by_name("sqlite")
            .unwrap()
            .profile
            .supported_universe();
        let mysql = preset_by_name("mysql")
            .unwrap()
            .profile
            .supported_universe();
        let cratedb = preset_by_name("cratedb")
            .unwrap()
            .profile
            .supported_universe();
        assert!(mysql.len() > cratedb.len());
        assert_ne!(sqlite, mysql);
    }
}
