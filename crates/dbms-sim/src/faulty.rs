//! Injected **infrastructure** faults: a decorator that makes any
//! [`DbmsConnection`] crash, hang, drop connections or garble results on a
//! deterministic, seed-derived schedule.
//!
//! This is the environmental counterpart of the engine's logic-bug switches
//! ([`crate::bugs::catalog`]): where those corrupt *answers*, these faults
//! break the *transport* — and a testing platform at fleet scale must treat
//! them as operational incidents, never as DBMS bugs. The decorator provides
//! the ground truth for that requirement (every fault is planned from the
//! case seed, so tests can predict exactly which cases are hit, and
//! [`crate::bugs::infra_catalog`] names them), while the campaign
//! supervisor provides the machinery (watchdog, retry, quarantine).
//!
//! All fault decisions derive from the `case_seed` passed to
//! [`DbmsConnection::begin_case`] — wall time and global state never enter
//! them — so a faulty campaign is exactly as reproducible as a healthy one.

use sql_ast::{fnv1a64, splitmix64};
use sqlancer_core::{
    BackendEvent, DbmsConnection, DialectQuirks, QueryResult, StateCheckpoint, StatementOutcome,
    StorageMetrics, INFRA_MARKER,
};

/// The injectable infrastructure fault kinds. The ids double as the
/// `fault` names of [`crate::bugs::infra_catalog`] and as the substrings
/// [`sqlancer_core::classify_infra_message`] keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfraFaultKind {
    /// Backend process crash (a panic mid-statement; stays down until the
    /// supervisor re-establishes the connection).
    Crash,
    /// Statement hang: the virtual clock jumps past any sane deadline.
    Hang,
    /// Transient connection drop: this attempt's statements fail, the next
    /// attempt succeeds.
    Drop,
    /// Garbled/truncated result detected by the wire-protocol checksum.
    Garble,
    /// Probe-time crash: the backend dies with a capability-probe
    /// attribution, exercising the `ProbeFailure` classification path.
    Probe,
    /// Post-respawn flapping: the backend bounces between healthy and
    /// broken for two consecutive attempts before stabilising — long
    /// enough to open a slot's circuit breaker, short enough to clear
    /// within the default retry budget.
    Flap,
}

impl InfraFaultKind {
    /// The stable fault id (`infra_crash`, `infra_hang`, ...).
    pub fn id(self) -> &'static str {
        match self {
            InfraFaultKind::Crash => "infra_crash",
            InfraFaultKind::Hang => "infra_hang",
            InfraFaultKind::Drop => "infra_drop",
            InfraFaultKind::Garble => "infra_garble",
            InfraFaultKind::Probe => "infra_probe",
            InfraFaultKind::Flap => "infra_flap",
        }
    }

    /// All kinds, in planning-priority order.
    pub fn all() -> [InfraFaultKind; 6] {
        [
            InfraFaultKind::Crash,
            InfraFaultKind::Hang,
            InfraFaultKind::Drop,
            InfraFaultKind::Garble,
            InfraFaultKind::Probe,
            InfraFaultKind::Flap,
        ]
    }
}

/// Which infrastructure faults are armed, and their shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyConfig {
    /// Arm crash-on-Nth-statement faults.
    pub crash: bool,
    /// Arm hang (deadline-overrun) faults.
    pub hang: bool,
    /// Arm transient connection-drop faults.
    pub drop: bool,
    /// Arm garbled-result faults.
    pub garble: bool,
    /// Arm probe-time crash faults.
    pub probe: bool,
    /// Arm post-respawn flapping faults.
    pub flap: bool,
    /// Capability lie: the connection rejects every `BEGIN`/`COMMIT`/
    /// `ROLLBACK` (text and AST, even in safe mode) while the driver's
    /// static [`sqlancer_core::Capability`] keeps claiming transactions.
    /// Not a planned per-case fault — it models a *permanently* lying
    /// backend, the input the runtime capability probe exists to catch.
    pub lie_transactions: bool,
    /// Roughly one in `period` cases is hit per armed fault kind.
    pub period: u64,
    /// A planned crash keeps recurring for this many attempts at the same
    /// case before the "backend restart" succeeds. Must stay at or below
    /// the supervisor's retry budget for the campaign to ride it out.
    pub crash_persist_attempts: u32,
    /// Virtual ticks a hung statement burns before timing out.
    pub hang_ticks: u64,
}

impl Default for FaultyConfig {
    /// All faults disarmed; shape parameters at their standard values.
    fn default() -> FaultyConfig {
        FaultyConfig {
            crash: false,
            hang: false,
            drop: false,
            garble: false,
            probe: false,
            flap: false,
            lie_transactions: false,
            period: 5,
            crash_persist_attempts: 2,
            hang_ticks: 1_000_000,
        }
    }
}

impl FaultyConfig {
    /// The fault storm: every infrastructure fault kind armed. With the
    /// default shape parameters and the default supervisor policy, every
    /// planned fault clears within the retry budget, so a storm campaign
    /// completes without quarantining.
    pub fn storm() -> FaultyConfig {
        FaultyConfig {
            crash: true,
            hang: true,
            drop: true,
            garble: true,
            probe: true,
            flap: true,
            ..FaultyConfig::default()
        }
    }

    /// The flaky-backend storm used by the `--flaky-check` gate: a
    /// capability lie on top of probe-time crashes and post-respawn
    /// flapping — everything the self-healing connection layer exists to
    /// absorb, and nothing else (no hangs/garbles, so every incident in
    /// the ledger is attributable to the resilience layer under test).
    pub fn flaky() -> FaultyConfig {
        FaultyConfig {
            probe: true,
            flap: true,
            lie_transactions: true,
            ..FaultyConfig::default()
        }
    }

    /// This configuration with one fault kind disarmed — the
    /// infrastructure analogue of the "fixed version" used for ground-truth
    /// bug bisection: re-running a campaign without a kind must make
    /// exactly that kind's incidents disappear.
    pub fn without(&self, kind: InfraFaultKind) -> FaultyConfig {
        let mut config = self.clone();
        match kind {
            InfraFaultKind::Crash => config.crash = false,
            InfraFaultKind::Hang => config.hang = false,
            InfraFaultKind::Drop => config.drop = false,
            InfraFaultKind::Garble => config.garble = false,
            InfraFaultKind::Probe => config.probe = false,
            InfraFaultKind::Flap => config.flap = false,
        }
        config
    }

    /// This configuration with one fault kind armed.
    pub fn arm(&self, kind: InfraFaultKind) -> FaultyConfig {
        let mut config = self.clone();
        match kind {
            InfraFaultKind::Crash => config.crash = true,
            InfraFaultKind::Hang => config.hang = true,
            InfraFaultKind::Drop => config.drop = true,
            InfraFaultKind::Garble => config.garble = true,
            InfraFaultKind::Probe => config.probe = true,
            InfraFaultKind::Flap => config.flap = true,
        }
        config
    }

    /// This configuration with exactly one fault kind armed (the rest
    /// disarmed) — the single-fault arm of a bisection sweep.
    pub fn without_all_but(&self, kind: InfraFaultKind) -> FaultyConfig {
        let mut config = FaultyConfig {
            crash: false,
            hang: false,
            drop: false,
            garble: false,
            probe: false,
            flap: false,
            ..self.clone()
        };
        match kind {
            InfraFaultKind::Crash => config.crash = true,
            InfraFaultKind::Hang => config.hang = true,
            InfraFaultKind::Drop => config.drop = true,
            InfraFaultKind::Garble => config.garble = true,
            InfraFaultKind::Probe => config.probe = true,
            InfraFaultKind::Flap => config.flap = true,
        }
        config
    }

    /// Whether a kind is armed.
    pub fn armed(&self, kind: InfraFaultKind) -> bool {
        match kind {
            InfraFaultKind::Crash => self.crash,
            InfraFaultKind::Hang => self.hang,
            InfraFaultKind::Drop => self.drop,
            InfraFaultKind::Garble => self.garble,
            InfraFaultKind::Probe => self.probe,
            InfraFaultKind::Flap => self.flap,
        }
    }

    /// Whether any planned per-case kind is armed (the capability lie is a
    /// standing condition, not a planned fault).
    pub fn any_armed(&self) -> bool {
        self.crash || self.hang || self.drop || self.garble || self.probe || self.flap
    }

    /// The fault planned for a case seed, if any: the first armed kind (in
    /// [`InfraFaultKind::all`] priority order) whose seed-derived hash
    /// lands in the 1-in-`period` window, firing on the `trigger`-th
    /// statement of the attempt. Deterministic in the seed alone.
    pub fn plan(&self, case_seed: u64) -> Option<FaultPlan> {
        if case_seed == 0 {
            return None;
        }
        let period = self.period.max(1);
        for kind in InfraFaultKind::all() {
            if !self.armed(kind) {
                continue;
            }
            let h = splitmix64(case_seed ^ fnv1a64(kind.id().as_bytes()));
            if h.is_multiple_of(period) {
                return Some(FaultPlan {
                    kind,
                    trigger: 1 + (h / period) % 6,
                });
            }
        }
        None
    }
}

/// A planned fault for one test case: which kind, and on which statement of
/// the attempt it fires (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault kind.
    pub kind: InfraFaultKind,
    /// 1-based statement index within the attempt at which the fault fires.
    /// A trigger beyond the case's statement count simply never fires —
    /// and the supervisor returns the connection to safe mode after each
    /// completed case, so an unfired fault can never leak into reduction
    /// or setup replay.
    pub trigger: u64,
}

/// Wraps any [`DbmsConnection`] with seed-planned infrastructure faults and
/// a virtual clock (one tick per statement; a hang jumps the clock).
///
/// Faults only fire while a case is active (after `begin_case` with a
/// non-zero seed); in safe mode (seed 0) the decorator is a transparent
/// pass-through, so setup, recovery replay and reduction are never hit.
#[derive(Debug, Clone)]
pub struct FaultyConnection<C> {
    inner: C,
    config: FaultyConfig,
    /// Safe mode: no case active, faults never fire.
    safe: bool,
    /// The last non-zero case seed seen. Survives the safe-mode recovery
    /// window between attempts, so retries of the same case count up the
    /// attempt number instead of starting over.
    case_seed: u64,
    /// Attempts observed for `case_seed` (0-based).
    attempt: u32,
    /// Statements executed within the current attempt.
    statement: u64,
    /// Virtual clock: monotone, never reset.
    ticks: u64,
    /// The backend crashed and has not been reconnected yet.
    down: bool,
    /// The connection is tainted (dropped) for the rest of this attempt.
    dropped: bool,
}

impl<C: DbmsConnection> FaultyConnection<C> {
    /// Wraps a connection.
    pub fn new(inner: C, config: FaultyConfig) -> FaultyConnection<C> {
        FaultyConnection {
            inner,
            config,
            safe: true,
            case_seed: 0,
            attempt: 0,
            statement: 0,
            ticks: 0,
            down: false,
            dropped: false,
        }
    }

    /// The fault configuration.
    pub fn config(&self) -> &FaultyConfig {
        &self.config
    }

    /// The wrapped connection.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper and returns the wrapped connection.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Charges one tick, then decides this statement's fate: `Ok(())` lets
    /// it through to the wrapped connection, `Err` is the infrastructure
    /// failure to surface. A planned crash panics (the supervisor isolates
    /// it with `catch_unwind`), exactly like a lost backend process would
    /// kill a wire-protocol driver call.
    fn on_statement(&mut self) -> Result<(), String> {
        self.ticks += 1;
        if self.safe {
            return Ok(());
        }
        if self.down {
            return Err(format!(
                "{INFRA_MARKER} backend is down after crash (injected infra_crash)"
            ));
        }
        if self.dropped {
            return Err(format!(
                "{INFRA_MARKER} connection dropped (injected infra_drop)"
            ));
        }
        self.statement += 1;
        let Some(plan) = self.config.plan(self.case_seed) else {
            return Ok(());
        };
        if self.statement != plan.trigger {
            return Ok(());
        }
        match plan.kind {
            InfraFaultKind::Crash => {
                if self.attempt < self.config.crash_persist_attempts {
                    self.down = true;
                    panic!("{INFRA_MARKER} backend crashed (injected infra_crash)");
                }
                Ok(())
            }
            InfraFaultKind::Hang => {
                if self.attempt == 0 {
                    self.ticks += self.config.hang_ticks;
                    return Err(format!(
                        "{INFRA_MARKER} statement exceeded deadline (injected infra_hang)"
                    ));
                }
                Ok(())
            }
            InfraFaultKind::Drop => {
                if self.attempt == 0 {
                    self.dropped = true;
                    return Err(format!(
                        "{INFRA_MARKER} connection dropped (injected infra_drop)"
                    ));
                }
                Ok(())
            }
            InfraFaultKind::Garble => {
                if self.attempt == 0 {
                    return Err(format!(
                        "{INFRA_MARKER} result checksum mismatch (injected infra_garble)"
                    ));
                }
                Ok(())
            }
            InfraFaultKind::Probe => {
                if self.attempt == 0 {
                    panic!(
                        "{INFRA_MARKER} backend crashed during capability probe \
                         (injected infra_probe)"
                    );
                }
                Ok(())
            }
            InfraFaultKind::Flap => {
                // Two broken attempts in a row: enough consecutive
                // infra-classified failures to open a slot's circuit
                // breaker (threshold 2), while still clearing inside the
                // default retry budget of 3.
                if self.attempt < 2 {
                    return Err(format!(
                        "{INFRA_MARKER} backend flapping after respawn (injected infra_flap)"
                    ));
                }
                Ok(())
            }
        }
    }

    /// The capability lie: reject transaction control outright, before any
    /// fault planning and even in safe mode — a lying backend lies to the
    /// probe too, which is exactly how the probe catches it. The message
    /// carries no [`INFRA_MARKER`]: to the platform this is an ordinary
    /// statement rejection, indistinguishable from a dialect that simply
    /// has no transactions.
    fn lie_rejection(&mut self, is_txn_control: bool) -> Option<String> {
        if !self.config.lie_transactions || !is_txn_control {
            return None;
        }
        self.ticks += 1;
        Some("transaction control rejected by backend (injected infra_capability_lie)".to_string())
    }
}

/// Whether a text statement is bare transaction control (`BEGIN`/`COMMIT`/
/// `ROLLBACK`, including `ROLLBACK TO`). Savepoint management is not
/// transaction control for the lie's purposes: the lie models a backend
/// whose *transaction* family claim is false.
fn is_txn_control_text(sql: &str) -> bool {
    let head = sql.trim_start();
    ["BEGIN", "COMMIT", "ROLLBACK"].iter().any(|kw| {
        head.len() >= kw.len()
            && head[..kw.len()].eq_ignore_ascii_case(kw)
            && head[kw.len()..]
                .chars()
                .next()
                .is_none_or(|ch| !ch.is_ascii_alphanumeric() && ch != '_')
    })
}

impl<C: DbmsConnection> DbmsConnection for FaultyConnection<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        if let Some(message) = self.lie_rejection(is_txn_control_text(sql)) {
            return StatementOutcome::Failure(message);
        }
        match self.on_statement() {
            Ok(()) => self.inner.execute(sql),
            Err(message) => StatementOutcome::Failure(message),
        }
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        self.on_statement()?;
        self.inner.query(sql)
    }

    fn execute_ast(&mut self, stmt: &sql_ast::Statement) -> StatementOutcome {
        // Mirrors `is_txn_control_text` exactly (text `ROLLBACK TO` matches
        // the `ROLLBACK` prefix, so `RollbackTo` is included): the lie must
        // behave identically on both execution paths or text and AST
        // campaign reports would diverge.
        let is_txn_control = matches!(
            stmt,
            sql_ast::Statement::Begin(_)
                | sql_ast::Statement::Commit
                | sql_ast::Statement::Rollback
                | sql_ast::Statement::RollbackTo(_)
        );
        if let Some(message) = self.lie_rejection(is_txn_control) {
            return StatementOutcome::Failure(message);
        }
        match self.on_statement() {
            Ok(()) => self.inner.execute_ast(stmt),
            Err(message) => StatementOutcome::Failure(message),
        }
    }

    fn query_ast(&mut self, select: &sql_ast::Select) -> Result<QueryResult, String> {
        self.on_statement()?;
        self.inner.query_ast(select)
    }

    fn reset(&mut self) {
        // A reset is a reconnect: it clears transport-level damage.
        self.down = false;
        self.dropped = false;
        self.inner.reset();
    }

    fn quirks(&self) -> DialectQuirks {
        self.inner.quirks()
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        // Extra sessions share the backend but not the fault plan: faults
        // model the *primary* connection's transport. (Session statements
        // also don't advance the primary's virtual clock, which keeps the
        // watchdog accounting single-sourced.)
        self.inner.open_session()
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        if self.down {
            return Err(format!(
                "{INFRA_MARKER} backend is down after crash (injected infra_crash)"
            ));
        }
        self.inner.storage_metrics()
    }

    fn begin_case(&mut self, case_seed: u64) {
        // Every begin_case models a fresh (re-)connection attempt: it
        // clears transport-level damage.
        self.down = false;
        self.dropped = false;
        self.statement = 0;
        if case_seed == 0 {
            // Safe mode: faults off, but the case bookkeeping survives — a
            // retry of the same case after the recovery rebuild must count
            // as the next attempt, not start over.
            self.safe = true;
            return;
        }
        self.safe = false;
        if case_seed == self.case_seed {
            self.attempt += 1;
        } else {
            self.case_seed = case_seed;
            self.attempt = 0;
        }
    }

    fn virtual_ticks(&self) -> u64 {
        self.ticks
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        self.inner.checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        self.inner.restore(checkpoint)
    }

    fn drain_backend_events(&mut self) -> Vec<BackendEvent> {
        // Transport faults are injected *above* the wrapped connection, so
        // the wrapper has no wall-plane events of its own to report.
        self.inner.drain_backend_events()
    }

    fn engine_coverage(&self) -> Option<sqlancer_core::EngineCoverage> {
        // Coverage is an engine-plane fact; transport faults don't redact
        // it (and the atlas poll only happens at quiescent checkpoints).
        self.inner.engine_coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset_by_name;
    use crate::runner::ExecutionPath;
    use sqlancer_core::{Campaign, CampaignConfig, OracleKind, SupervisorConfig};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A trivially healthy inner connection.
    struct EchoConn;

    impl DbmsConnection for EchoConn {
        fn name(&self) -> &str {
            "echo"
        }
        fn execute(&mut self, _sql: &str) -> StatementOutcome {
            StatementOutcome::Success
        }
        fn query(&mut self, _sql: &str) -> Result<QueryResult, String> {
            Ok(QueryResult::default())
        }
        fn reset(&mut self) {}
        fn quirks(&self) -> DialectQuirks {
            DialectQuirks::default()
        }
    }

    fn seed_with_plan(config: &FaultyConfig, kind: InfraFaultKind) -> u64 {
        (1..100_000u64)
            .find(|seed| config.plan(*seed).is_some_and(|plan| plan.kind == kind))
            .expect("some seed plans the requested fault kind")
    }

    #[test]
    fn plans_are_deterministic_and_respect_arming() {
        let storm = FaultyConfig::storm();
        assert!(storm.any_armed());
        assert_eq!(storm.plan(0), None, "seed 0 is the safe-mode seed");
        for seed in 1..2_000u64 {
            let plan = storm.plan(seed);
            assert_eq!(plan, storm.plan(seed), "planning is a pure function");
            if let Some(plan) = plan {
                assert!(storm.armed(plan.kind));
                assert!((1..=6).contains(&plan.trigger));
                // Bisection contract: disarming the planned kind makes this
                // case either clean or fault a *different* kind.
                let without = storm.without(plan.kind);
                assert!(!without.armed(plan.kind));
                if let Some(other) = without.plan(seed) {
                    assert_ne!(other.kind, plan.kind);
                }
            }
        }
        assert!(!FaultyConfig::default().any_armed());
        assert_eq!(FaultyConfig::default().plan(17), None);
    }

    #[test]
    fn every_kind_fires_somewhere_and_crash_takes_priority() {
        let storm = FaultyConfig::storm();
        for kind in InfraFaultKind::all() {
            let seed = seed_with_plan(&storm.without_all_but(kind), kind);
            assert_eq!(storm.without_all_but(kind).plan(seed).unwrap().kind, kind);
        }
        // A seed that plans garble under a garble-only config plans crash
        // under the storm whenever the crash window also hits that seed.
        let garble_only = FaultyConfig::default().arm(InfraFaultKind::Garble);
        let crash_only = FaultyConfig::default().arm(InfraFaultKind::Crash);
        let seed = (1..1_000_000u64)
            .find(|s| garble_only.plan(*s).is_some() && crash_only.plan(*s).is_some())
            .expect("overlapping fault windows exist");
        assert_eq!(storm.plan(seed).unwrap().kind, InfraFaultKind::Crash);
    }

    #[test]
    fn safe_mode_is_a_transparent_pass_through() {
        let mut config = FaultyConfig::storm();
        config.period = 1; // every case would fault if a case were active
        let mut conn = FaultyConnection::new(EchoConn, config);
        conn.begin_case(0);
        for _ in 0..64 {
            assert!(conn.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
            assert!(conn.query("SELECT 1").is_ok());
        }
        assert_eq!(
            conn.virtual_ticks(),
            128,
            "the clock still runs in safe mode"
        );
    }

    #[test]
    fn crash_persists_across_attempts_then_clears() {
        let config = FaultyConfig::default().arm(InfraFaultKind::Crash);
        let seed = seed_with_plan(&config, InfraFaultKind::Crash);
        let trigger = config.plan(seed).unwrap().trigger;
        let persist = config.crash_persist_attempts;
        let mut conn = FaultyConnection::new(EchoConn, config);
        for attempt in 0..=persist {
            conn.begin_case(seed);
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                for _ in 0..trigger {
                    let outcome = conn.execute("SELECT 1");
                    assert!(outcome.is_success(), "pre-trigger statements pass");
                }
            }))
            .is_err();
            if attempt < persist {
                assert!(crashed, "attempt {attempt} should crash at the trigger");
                // While down, every statement fails with the crash marker.
                let failure = conn.query("SELECT 1").unwrap_err();
                assert!(failure.contains(INFRA_MARKER));
                assert!(failure.contains("infra_crash"));
                assert!(conn.storage_metrics().is_err());
                // Supervisor-style recovery: safe mode + reconnect.
                conn.begin_case(0);
                conn.reset();
            } else {
                assert!(!crashed, "the backend restart finally holds");
                assert!(conn.query("SELECT 1").is_ok());
            }
        }
    }

    #[test]
    fn drop_taints_the_rest_of_the_attempt_only() {
        let config = FaultyConfig::default().arm(InfraFaultKind::Drop);
        let seed = seed_with_plan(&config, InfraFaultKind::Drop);
        let trigger = config.plan(seed).unwrap().trigger;
        let mut conn = FaultyConnection::new(EchoConn, config);
        conn.begin_case(seed);
        for _ in 1..trigger {
            assert!(conn.query("SELECT 1").is_ok());
        }
        let failure = conn.query("SELECT 1").unwrap_err();
        assert!(failure.contains("infra_drop"));
        // Tainted for the rest of the attempt...
        assert!(conn.query("SELECT 1").unwrap_err().contains("infra_drop"));
        // ...but the retry (same seed → next attempt) goes through clean.
        conn.begin_case(0);
        conn.reset();
        conn.begin_case(seed);
        for _ in 0..16 {
            assert!(conn.query("SELECT 1").is_ok());
        }
    }

    #[test]
    fn hang_jumps_the_virtual_clock_past_the_deadline() {
        let config = FaultyConfig::default().arm(InfraFaultKind::Hang);
        let seed = seed_with_plan(&config, InfraFaultKind::Hang);
        let trigger = config.plan(seed).unwrap().trigger;
        let mut conn = FaultyConnection::new(EchoConn, config.clone());
        conn.begin_case(seed);
        let before = conn.virtual_ticks();
        for _ in 1..trigger {
            assert!(conn.query("SELECT 1").is_ok());
        }
        let failure = conn.query("SELECT 1").unwrap_err();
        assert!(failure.contains("infra_hang"));
        assert!(conn.virtual_ticks() - before > config.hang_ticks);
    }

    #[test]
    fn fault_hitting_the_oracle_rebuild_surfaces_as_infra_not_corruption() {
        // The rollback oracle replays the setup log *inside the case*
        // (faults armed), so a fault whose trigger lands on a replay
        // statement hits the rebuild, not the session. That must surface
        // as a marked infra failure the supervisor retries — swallowing it
        // silently would checkpoint a half-built state that leaks past the
        // case and makes campaign reports depend on the pool size.
        use sql_ast::Statement;
        use sqlancer_core::{check_rollback, FeatureSet, OracleOutcome};

        let config = FaultyConfig::default().arm(InfraFaultKind::Garble);
        // Six setup statements cover the whole trigger range (1..=6): any
        // planned garble lands inside the capture rebuild.
        let setup: Vec<String> = std::iter::once("CREATE TABLE t0 (c0 INTEGER)".to_string())
            .chain((0..5).map(|v| format!("INSERT INTO t0 (c0) VALUES ({v})")))
            .collect();
        let seed = seed_with_plan(&config, InfraFaultKind::Garble);
        let mut conn = crate::preset_by_name("sqlite")
            .unwrap()
            .with_infra_faults(config.clone())
            .instantiate_for_path(crate::runner::ExecutionPath::Ast);
        // Campaign phase 1: build the state in safe mode.
        conn.begin_case(0);
        for sql in &setup {
            assert!(conn.execute(sql).is_success());
        }
        let session = vec![Statement::Insert(sql_ast::Insert {
            table: "t0".into(),
            columns: vec!["c0".into()],
            values: vec![vec![sql_ast::Expr::integer(7)]],
            or_ignore: false,
        })];
        let features = FeatureSet::new();

        conn.begin_case(seed);
        let outcome = check_rollback(&mut *conn, "t0", &session, &features, &setup);
        let OracleOutcome::Invalid(message) = outcome else {
            panic!("fault-hit rebuild must not produce a verdict: {outcome:?}");
        };
        assert!(
            message.contains(INFRA_MARKER),
            "unmarked failure: {message}"
        );
        assert!(message.contains("infra_garble"), "misattributed: {message}");

        // Supervisor-style recovery, then the retry (attempt 1, fault
        // cleared) completes cleanly on an uncorrupted state.
        conn.begin_case(0);
        conn.reset();
        for sql in &setup {
            assert!(conn.execute(sql).is_success());
        }
        conn.begin_case(seed);
        let retry = check_rollback(&mut *conn, "t0", &session, &features, &setup);
        assert!(
            matches!(retry, OracleOutcome::Passed),
            "retry should pass: {retry:?}"
        );
    }

    #[test]
    fn probe_fault_panics_once_with_probe_attribution() {
        let config = FaultyConfig::default().arm(InfraFaultKind::Probe);
        let seed = seed_with_plan(&config, InfraFaultKind::Probe);
        let trigger = config.plan(seed).unwrap().trigger;
        let mut conn = FaultyConnection::new(EchoConn, config);
        conn.begin_case(seed);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..trigger {
                let _ = conn.execute("SELECT 1");
            }
        }));
        let payload = caught.expect_err("attempt 0 should die at the trigger");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains(INFRA_MARKER));
        assert!(message.contains("infra_probe"));
        // The retry (attempt 1) is clean: a probe-time crash is transient.
        conn.begin_case(0);
        conn.reset();
        conn.begin_case(seed);
        for _ in 0..16 {
            assert!(conn.query("SELECT 1").is_ok());
        }
    }

    #[test]
    fn flap_fault_breaks_two_attempts_then_stabilises() {
        let config = FaultyConfig::default().arm(InfraFaultKind::Flap);
        let seed = seed_with_plan(&config, InfraFaultKind::Flap);
        let trigger = config.plan(seed).unwrap().trigger;
        let mut conn = FaultyConnection::new(EchoConn, config);
        for attempt in 0..3u32 {
            conn.begin_case(seed);
            let mut failed = None;
            for _ in 0..trigger {
                if let Err(message) = conn.query("SELECT 1") {
                    failed = Some(message);
                    break;
                }
            }
            match attempt {
                0 | 1 => {
                    let message = failed.expect("flapping attempts fail at the trigger");
                    assert!(message.contains("infra_flap"), "misattributed: {message}");
                }
                _ => assert!(failed.is_none(), "the backend stabilises on attempt 2"),
            }
            conn.begin_case(0);
            conn.reset();
        }
    }

    #[test]
    fn capability_lie_rejects_txn_control_on_both_paths_even_in_safe_mode() {
        let config = FaultyConfig::flaky();
        assert!(config.lie_transactions);
        let mut conn = FaultyConnection::new(EchoConn, config);
        conn.begin_case(0); // safe mode — the probe runs here
        for sql in [
            "BEGIN",
            "begin immediate",
            "COMMIT",
            "ROLLBACK",
            "ROLLBACK TO sp1",
        ] {
            let outcome = conn.execute(sql);
            let StatementOutcome::Failure(message) = outcome else {
                panic!("lying backend accepted {sql:?}");
            };
            assert!(message.contains("infra_capability_lie"));
            assert!(
                !message.contains(INFRA_MARKER),
                "a lie is a rejection, not a transport failure: {message}"
            );
        }
        for stmt in [
            sql_ast::Statement::Begin(sql_ast::BeginMode::Plain),
            sql_ast::Statement::Commit,
            sql_ast::Statement::Rollback,
            sql_ast::Statement::RollbackTo("sp1".into()),
        ] {
            assert!(
                !conn.execute_ast(&stmt).is_success(),
                "lying backend accepted AST txn control"
            );
        }
        // Everything else passes through untouched — the lie is surgical.
        assert!(conn.execute("SELECT 1").is_success());
        assert!(conn.execute("SAVEPOINT sp1").is_success());
        assert!(conn.execute("RELEASE SAVEPOINT sp1").is_success());
        assert!(conn
            .execute("CREATE TABLE rollbacks (c0 INTEGER)")
            .is_success());
    }

    #[test]
    fn storm_campaign_completes_with_zero_false_positive_bugs() {
        let preset = preset_by_name("sqlite")
            .unwrap()
            .with_infra_faults(FaultyConfig::storm());
        let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
        let mut campaign = Campaign::new(
            CampaignConfig::builder()
                .seed(0xFA17)
                .databases(2)
                .ddl_per_database(6)
                .queries_per_database(40)
                .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
                .reduce_bugs(false)
                .build(),
        );
        let report = campaign.run_supervised(&mut conn, &SupervisorConfig::default());
        // The storm actually hit the campaign...
        assert!(
            report.robustness.incidents > 0,
            "the storm must land faults"
        );
        assert!(report.robustness.retries > 0);
        // ...every fault cleared within the retry budget...
        assert_eq!(report.robustness.infra_failures, 0);
        assert!(!report.degraded);
        // ...and no infrastructure fault leaked into the bug reports.
        for bug in &report.reports {
            assert!(
                !bug.description.contains(INFRA_MARKER),
                "infra fault surfaced as a logic bug: {}",
                bug.description
            );
        }
    }

    #[test]
    fn supervised_storm_run_is_deterministic() {
        let run = || {
            let preset = preset_by_name("duckdb")
                .unwrap()
                .with_infra_faults(FaultyConfig::storm());
            let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
            let mut campaign = Campaign::new(
                CampaignConfig::builder()
                    .seed(0xBEEF)
                    .databases(1)
                    .ddl_per_database(6)
                    .queries_per_database(30)
                    .oracles(vec![OracleKind::Tlp])
                    .reduce_bugs(false)
                    .build(),
            );
            campaign.run_supervised(&mut conn, &SupervisorConfig::default())
        };
        let first = run();
        let second = run();
        assert_eq!(first.metrics, second.metrics);
        assert_eq!(first.incidents, second.incidents);
        assert_eq!(first.robustness, second.robustness);
        assert_eq!(first.reports, second.reports);
    }
}
