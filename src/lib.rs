//! # sqlancerpp
//!
//! Facade crate for the Rust reproduction of **SQLancer++** ("Scaling
//! Automated Database System Testing", ASPLOS 2026).
//!
//! The workspace is organised bottom-up; this crate re-exports the pieces a
//! downstream user needs to run a testing campaign end to end:
//!
//! * [`ast`] — SQL AST, values and rendering (`sql-ast`)
//! * [`parser`] — SQL text → AST (`sql-parser`)
//! * [`engine`] — the in-memory relational engine (`sql-engine`)
//! * [`sim`] — the simulated DBMS fleet with dialects and injected bugs
//!   (`dbms-sim`)
//! * [`sqlite`] — the first real wire backend: the system `sqlite3` binary
//!   driven over a subprocess pipe (`dbms-sqlite`)
//! * [`core`] — the paper's contribution: adaptive generator, oracles,
//!   prioritizer, reducer and campaign runner (`sqlancer-core`)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SQL AST, values and rendering (re-export of `sql-ast`).
pub mod ast {
    pub use sql_ast::*;
}

/// SQL text → AST (re-export of `sql-parser`).
pub mod parser {
    pub use sql_parser::*;
}

/// In-memory relational engine (re-export of `sql-engine`).
pub mod engine {
    pub use sql_engine::*;
}

/// Simulated DBMS fleet: dialect profiles and fault injection (re-export of
/// `dbms-sim`).
pub mod sim {
    pub use dbms_sim::*;
}

/// Real wire backend: the system `sqlite3` binary over a subprocess pipe
/// (re-export of `dbms-sqlite`).
pub mod sqlite {
    pub use dbms_sqlite::*;
}

/// The SQLancer++ core: adaptive generator, oracles, prioritizer, campaign
/// runner (re-export of `sqlancer-core`).
pub mod core {
    pub use sqlancer_core::*;
}
