#!/usr/bin/env bash
# CI gate for the SQLancer++ reproduction workspace.
#
#   ./ci.sh          # full gate: fmt, clippy, release build, tests, smoke
#
# Every step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> smoke campaign (~5s)"
# A quick fixed-seed fleet campaign through the throughput harness; writes
# to a scratch path so the committed BENCH_campaign.json is not clobbered.
./target/release/campaign_throughput 40 /tmp/ci_smoke_bench.json
grep -q '"speedup_ast_over_text"' /tmp/ci_smoke_bench.json

echo "CI OK"
