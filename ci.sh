#!/usr/bin/env bash
# CI gate for the SQLancer++ reproduction workspace.
#
#   ./ci.sh          # full gate: fmt, clippy, release build, tests, smoke,
#                    # bench-shape validation, perf-regression gate
#
# Every step must pass; the script stops at the first failure. The perf
# gate compares the smoke run's speedup ratios against the floors committed
# in BENCH_campaign.json (ci_floors), so a change that silently loses the
# AST fast path or the compiled evaluator fails CI.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> smoke campaign (~20s)"
# A quick fixed-seed fleet campaign through the throughput harness; writes
# to a scratch path so the committed BENCH_campaign.json is not clobbered.
# The binary validates the JSON it wrote and exits non-zero on malformed or
# partial output — set -e makes either failure fatal here. 100 queries/db
# is the smallest budget whose speedup ratios are stable enough to gate on
# (40 was observed within noise of the compiled-evaluator floor).
SMOKE_JSON=/tmp/ci_smoke_bench.json
./target/release/campaign_throughput 100 "$SMOKE_JSON"
./target/release/campaign_throughput --validate "$SMOKE_JSON"

echo "==> within-dialect partitioned runner"
# Shards one dialect's campaign across worker threads and asserts the
# merged report (metrics, bug reports, replayable cases, validity series,
# learned profile) is byte-identical to the single-worker run. The binary
# probes available_parallelism() itself: the speedup assertion only arms
# on multi-CPU machines (this container reports 1 CPU), the identity
# check always runs.
./target/release/campaign_throughput --partitioned-check mariadb

echo "==> fault-storm robustness gate"
# Arms every injected infrastructure fault (crash, hang, drop, garbled
# result) on a backend and runs a supervised campaign. The binary asserts:
# the campaign completes without aborting or quarantining, every infra_*
# fault kind is observed with clean ground-truth bisection (disarming a
# kind removes exactly its incidents), zero infrastructure faults surface
# as logic-bug reports, and a campaign killed mid-run resumes from its
# checkpoint file to a byte-identical report — serially and partitioned.
./target/release/campaign_throughput --fault-storm-check sqlite

echo "==> observability (trace) gate"
# Attaches the full tracing stack (deterministic summary, flight recorder,
# JSONL dump) to a supervised campaign and asserts: the traced run keeps
# the committed fraction of the untraced throughput and produces a
# byte-identical report (tracing observes, never perturbs); under a full
# fault storm the partitioned runner's merged trace summary is
# byte-identical for any worker and pool count; every detected bug case
# has a pinned flight-recorder history; and the JSONL dump written at
# campaign end is well-formed and matches the in-memory document.
./target/release/campaign_throughput --trace-check dolt

echo "==> coverage-atlas gate"
# Asserts the rendered coverage atlas is byte-identical for any worker
# count, pool size and execution path under a full fault storm; that
# coverage-directed scheduling reaches at least the uniform scheduler's
# distinct-feature coverage at the same case budget; that the atlas
# accounting keeps the committed fraction of an accounting-free
# baseline's throughput with a byte-identical report; and that the atlas
# line flushed through the flight-recorder JSONL path is well-formed and
# matches the final report's atlas exactly.
./target/release/campaign_throughput --coverage-check dolt

echo "==> self-healing connection-layer (flaky-backend) gate"
# Runs a supervised pooled campaign against a backend that lies about
# transaction support, crashes during capability probes and flaps after
# respawns. The binary asserts: the driver is probed and downgraded, the
# campaign completes without degrading, zero faults surface as
# logic-bug reports, every breaker trip and recovery is in the incident
# ledger, the rendered report is byte-identical across pool sizes 1/2/4,
# worker counts and both execution paths while breakers trip and recover,
# and the flaky campaign keeps the committed fraction of the healthy
# pooled campaign's throughput.
./target/release/campaign_throughput --flaky-check sqlite

echo "==> subprocess-sqlite wire-backend gate"
# Runs a full mixed-oracle campaign (TLP, NoREC, rollback) against the
# system sqlite3 binary over the subprocess driver through a size-2 pool
# and asserts it completes cleanly with zero bug reports (real sqlite is
# self-consistent, so any divergence is a false positive in our stack).
# The binary prints a SKIPPED notice and exits 0 when no working sqlite3
# is on PATH, so the gate degrades visibly rather than failing CI.
./target/release/campaign_throughput --sqlite-check

echo "==> perf-regression gate"
# Extract a numeric value for "key" from a JSON file (first occurrence).
json_number() {
  sed -n "s/.*\"$2\": *\([0-9][0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}
gate() { # gate <name> <actual> <floor>
  local name=$1 actual=$2 floor=$3
  if [ -z "$actual" ] || [ -z "$floor" ]; then
    echo "FAIL: could not extract $name (actual='$actual', floor='$floor')" >&2
    exit 1
  fi
  if ! awk -v a="$actual" -v f="$floor" 'BEGIN { exit !(a >= f) }'; then
    echo "FAIL: $name regressed: $actual < floor $floor" >&2
    exit 1
  fi
  echo "    $name: $actual >= $floor"
}
floor_ast=$(json_number BENCH_campaign.json min_speedup_ast_over_text)
floor_compiled=$(json_number BENCH_campaign.json min_speedup_compiled_over_tree)
floor_txn=$(json_number BENCH_campaign.json min_txn_throughput_ratio)
floor_iso=$(json_number BENCH_campaign.json min_isolation_throughput_ratio)
floor_traced=$(json_number BENCH_campaign.json min_traced_throughput_ratio)
floor_coverage=$(json_number BENCH_campaign.json min_coverage_throughput_ratio)
floor_probed=$(json_number BENCH_campaign.json min_probed_throughput_ratio)
actual_ast=$(json_number "$SMOKE_JSON" speedup_ast_over_text)
actual_compiled=$(json_number "$SMOKE_JSON" speedup_compiled_over_tree)
actual_txn=$(json_number "$SMOKE_JSON" txn_throughput_ratio)
actual_iso=$(json_number "$SMOKE_JSON" isolation_throughput_ratio)
actual_traced=$(json_number "$SMOKE_JSON" traced_throughput_ratio)
actual_coverage=$(json_number "$SMOKE_JSON" coverage_throughput_ratio)
actual_probed=$(json_number "$SMOKE_JSON" probed_throughput_ratio)
gate speedup_ast_over_text "$actual_ast" "$floor_ast"
gate speedup_compiled_over_tree "$actual_compiled" "$floor_compiled"
gate txn_throughput_ratio "$actual_txn" "$floor_txn"
gate isolation_throughput_ratio "$actual_iso" "$floor_iso"
gate traced_throughput_ratio "$actual_traced" "$floor_traced"
gate coverage_throughput_ratio "$actual_coverage" "$floor_coverage"
gate probed_throughput_ratio "$actual_probed" "$floor_probed"

echo "CI OK"
